"""Cross-process artifact locks.

Two recorders pointed at the same cache root and the same
:class:`~repro.engine.spec.RunSpec` must never interleave inside one
artifact directory: ``PendingArtifact`` starts by clearing partial files,
so an unsynchronized second writer would delete the first writer's
half-written trace out from under it. :class:`KeyLock` serializes them
with one ``flock``-ed lock file per content key, kept under
``<root>/.locks/`` so artifact directories stay exactly three files.

``flock`` locks are advisory, per open-file-description (so two handles
in one process conflict just like two processes do), and — crucially for
crash robustness — released automatically by the kernel when the holder
dies, so a crashed recorder can never wedge the cache.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op:
single-process use stays correct, and the cache's commit-marker protocol
still bounds the damage of a true multi-writer race to a wasted
re-record.
"""

from __future__ import annotations

import os
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.errors import CacheLockError

#: Poll interval while waiting on a contended lock with a timeout.
_POLL_S = 0.01


class KeyLock:
    """An exclusive ``flock`` on one lock file (one artifact key)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def _open(self) -> int:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        return os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)

    def acquire(self, timeout: float | None = None) -> "KeyLock":
        """Take the lock, waiting at most *timeout* seconds (forever when
        ``None``); raises :class:`~repro.errors.CacheLockError` on
        timeout."""
        if self._fd is not None:
            return self
        fd = self._open()
        try:
            if fcntl is None:
                self._fd = fd
                return self
            if timeout is None:
                fcntl.flock(fd, fcntl.LOCK_EX)
                self._fd = fd
                return self
            deadline = time.monotonic() + timeout
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return self
                except OSError:
                    if time.monotonic() >= deadline:
                        raise CacheLockError(
                            f"timed out after {timeout:.3f}s waiting for "
                            f"artifact lock {self.path}"
                        ) from None
                    time.sleep(_POLL_S)
        except BaseException:
            if self._fd is None:
                os.close(fd)
            raise

    def try_acquire(self) -> bool:
        """Non-blocking attempt; True iff the lock is now held."""
        try:
            self.acquire(timeout=0.0)
            return True
        except CacheLockError:
            return False

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def __enter__(self) -> "KeyLock":
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()
