"""Run specifications: the identity of one instrumented execution.

A :class:`RunSpec` names everything that determines an application's
reference stream — the app (or input variant), fidelity knobs, and seed.
Its :attr:`~RunSpec.key` is a content hash over the canonical form, which
the artifact cache uses as the storage address: two requests with the same
spec resolve to the same recorded trace, so each distinct execution
happens at most once ("trace once, replay many").
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Prefix selecting an application's alternative-input variant
#: (``variant:cam`` records :class:`~repro.apps.variants.CAMHighResolution`).
VARIANT_PREFIX = "variant:"

#: Prefix selecting a workload family from
#: :data:`repro.workloads.families.FAMILIES` (``workload:kvcache`` records
#: the KV-cache/serving generator). Families are first-class specs: same
#: content addressing, caching, scheduling and daemon service as the apps.
WORKLOAD_PREFIX = "workload:"


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one instrumented run's event stream."""

    app: str
    refs_per_iteration: int = 30_000
    scale: float = 1.0 / 64.0
    n_iterations: int = 10
    seed: int = 0

    def canonical(self) -> dict:
        """JSON-stable form; the hash input and the meta.json record."""
        return {
            "app": self.app,
            "refs_per_iteration": int(self.refs_per_iteration),
            "scale": float(self.scale),
            "n_iterations": int(self.n_iterations),
            "seed": int(self.seed),
        }

    @property
    def key(self) -> str:
        """Content address: sha256 over the canonical JSON form."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    def instantiate(self):
        """Build the (not yet executed) model application for this spec."""
        from repro.apps import VARIANT_OF, create_app

        if self.app.startswith(WORKLOAD_PREFIX):
            from repro.workloads.families import create_workload

            return create_workload(
                self.app[len(WORKLOAD_PREFIX):],
                scale=self.scale,
                refs_per_iteration=self.refs_per_iteration,
                n_iterations=self.n_iterations,
                seed=self.seed,
            )
        if self.app.startswith(VARIANT_PREFIX):
            base = self.app[len(VARIANT_PREFIX):]
            cls = VARIANT_OF.get(base)
            if cls is None:
                raise ConfigurationError(
                    f"no input variant for application {base!r}; "
                    f"know {sorted(VARIANT_OF)}"
                )
            return cls(
                scale=self.scale,
                refs_per_iteration=self.refs_per_iteration,
                n_iterations=self.n_iterations,
                seed=self.seed,
            )
        return create_app(
            self.app,
            scale=self.scale,
            refs_per_iteration=self.refs_per_iteration,
            n_iterations=self.n_iterations,
            seed=self.seed,
        )

    def __str__(self) -> str:
        return (
            f"{self.app}(refs={self.refs_per_iteration}, scale={self.scale:.5f}, "
            f"iters={self.n_iterations}, seed={self.seed})"
        )
