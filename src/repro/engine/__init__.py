"""Trace-once / replay-many pipeline engine (shared artifact cache).

The paper's methodology — and the record-once-analyze-many pipelines it
builds on — separates *executing* an instrumented application from
*consuming* its event stream. This package makes that split explicit:

* :class:`RunSpec` — the identity of one execution (app, knobs, seed),
  hashed into a content address;
* :class:`ArtifactCache` — durable storage of recorded runs (crash-safe
  v2 traces + event log + atomic meta.json commit marker);
* :class:`PipelineEngine` — records each distinct spec at most once and
  replays artifacts into arbitrary probe sets, with per-stage wall-time
  and refs/sec accounting.

The cache is self-healing and chaos-tested: :mod:`repro.engine.chaos`
injects deterministic I/O faults (torn writes, ``ENOSPC``/``EIO``, crash
points, bit flips), :mod:`repro.engine.locks` serializes cross-process
recorders per key, corrupt artifacts are quarantined and re-recorded,
and :meth:`ArtifactCache.fsck` / :meth:`ArtifactCache.gc` scrub and
size-bound a persistent cache root.
"""

from repro.engine.spec import RunSpec, VARIANT_PREFIX
from repro.engine.artifacts import (
    Artifact,
    ArtifactCache,
    FsckEntry,
    FsckReport,
    GcReport,
    PendingArtifact,
)
from repro.engine.chaos import ChaosFS, IOFault, IOFaultScenario, SimulatedCrash
from repro.engine.events import EventLogProbe, ReplayStackView, replay_events
from repro.engine.locks import KeyLock
from repro.engine.engine import EngineStats, PipelineEngine, StageStats

__all__ = [
    "RunSpec",
    "VARIANT_PREFIX",
    "Artifact",
    "ArtifactCache",
    "ChaosFS",
    "FsckEntry",
    "FsckReport",
    "GcReport",
    "IOFault",
    "IOFaultScenario",
    "KeyLock",
    "PendingArtifact",
    "SimulatedCrash",
    "EventLogProbe",
    "ReplayStackView",
    "replay_events",
    "EngineStats",
    "PipelineEngine",
    "StageStats",
]
