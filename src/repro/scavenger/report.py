"""Plain-text and CSV rendering of analysis results."""

from __future__ import annotations

import csv
import io
import math
from typing import Sequence

from repro.scavenger.classify import Classified
from repro.scavenger.metrics import ObjectMetrics
from repro.util.units import fmt_bytes


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with per-column width fitting."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if math.isinf(cell):
            return "inf"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def objects_table(rows: list[ObjectMetrics], limit: int | None = None) -> str:
    """Figures 3–6 as text: one line per global/heap object."""
    data = []
    ordered = sorted(rows, key=lambda m: -m.size)
    if limit is not None:
        ordered = ordered[:limit]
    for m in ordered:
        data.append(
            (
                m.name,
                m.kind.name,
                fmt_bytes(m.size),
                m.reads,
                m.writes,
                "inf" if m.writes == 0 else f"{m.rw_ratio:.2f}",
                f"{m.reference_rate:.4%}",
                m.iterations_touched,
            )
        )
    return format_table(
        ["object", "kind", "size", "reads", "writes", "r/w", "ref rate", "iters"],
        data,
    )


def classification_table(classified: list[Classified]) -> str:
    data = [
        (
            c.metrics.name,
            fmt_bytes(c.metrics.size),
            c.nvram_class.value,
            c.placement.value,
            c.reason or "-",
        )
        for c in sorted(classified, key=lambda c: -c.metrics.size)
    ]
    return format_table(["object", "size", "class", "placement", "reason"], data)


def objects_csv(rows: list[ObjectMetrics]) -> str:
    """CSV export of per-object metrics (for external plotting)."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(
        ["oid", "name", "kind", "size_bytes", "reads", "writes", "rw_ratio",
         "reference_rate", "write_share", "iterations_touched"]
    )
    for m in rows:
        w.writerow(
            [m.oid, m.name, m.kind.name, m.size, m.reads, m.writes,
             "" if m.writes == 0 else f"{m.rw_ratio:.6g}",
             f"{m.reference_rate:.6g}", f"{m.write_share:.6g}",
             m.iterations_touched]
        )
    return buf.getvalue()
