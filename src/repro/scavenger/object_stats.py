"""Per-object, per-iteration access counters.

The central accumulator all analyzers write into. Counts live in dense
``(n_objects, n_iterations)`` int64 matrices that grow geometrically; a
whole batch is folded in with two ``np.bincount`` calls, so cost is O(batch)
regardless of object count.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.trace.record import RefBatch


class ObjectStatsTable:
    """Growable read/write count matrices indexed ``[oid, iteration]``."""

    def __init__(self, n_objects_hint: int = 64, n_iterations_hint: int = 12) -> None:
        self._reads = np.zeros((n_objects_hint, n_iterations_hint), dtype=np.int64)
        self._writes = np.zeros_like(self._reads)
        self._n_objects = 0
        self._n_iterations = 0

    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self._n_objects

    @property
    def n_iterations(self) -> int:
        """Number of iteration slots seen (including iteration 0)."""
        return self._n_iterations

    @property
    def reads(self) -> np.ndarray:
        """Read counts, shape ``(n_objects, n_iterations)`` (view)."""
        return self._reads[: self._n_objects, : self._n_iterations]

    @property
    def writes(self) -> np.ndarray:
        """Write counts, shape ``(n_objects, n_iterations)`` (view)."""
        return self._writes[: self._n_objects, : self._n_iterations]

    @property
    def refs(self) -> np.ndarray:
        """Total references, shape ``(n_objects, n_iterations)``."""
        return self.reads + self.writes

    # ------------------------------------------------------------------
    def _ensure(self, n_objects: int, n_iterations: int) -> None:
        rows = max(self._reads.shape[0], n_objects)
        cols = max(self._reads.shape[1], n_iterations)
        if rows > self._reads.shape[0] or cols > self._reads.shape[1]:
            rows = max(rows, 2 * self._reads.shape[0])
            cols = max(cols, 2 * self._reads.shape[1])
            for name in ("_reads", "_writes"):
                old = getattr(self, name)
                new = np.zeros((rows, cols), dtype=np.int64)
                new[: old.shape[0], : old.shape[1]] = old
                setattr(self, name, new)
        self._n_objects = max(self._n_objects, n_objects)
        self._n_iterations = max(self._n_iterations, n_iterations)

    def add_batch(self, oids: np.ndarray, is_write: np.ndarray, iteration: int) -> None:
        """Fold attributed references in; ``oid < 0`` entries are dropped."""
        if iteration < 0:
            raise SimulationError(f"negative iteration {iteration}")
        oids = np.asarray(oids)
        is_write = np.asarray(is_write, dtype=bool)
        keep = oids >= 0
        if not keep.all():
            oids = oids[keep]
            is_write = is_write[keep]
        if oids.size == 0:
            self._ensure(self._n_objects, iteration + 1)
            return
        top = int(oids.max()) + 1
        self._ensure(top, iteration + 1)
        r = np.bincount(oids[~is_write], minlength=top)
        w = np.bincount(oids[is_write], minlength=top)
        self._reads[:top, iteration] += r
        self._writes[:top, iteration] += w

    def add_ref_batch(self, batch: RefBatch, oids: np.ndarray | None = None) -> None:
        """Fold a :class:`RefBatch` in, using *oids* (or the batch's own)."""
        self.add_batch(batch.oid if oids is None else oids, batch.is_write, batch.iteration)

    # ------------------------------------------------------------------
    # aggregates
    def totals_per_iteration(self) -> tuple[np.ndarray, np.ndarray]:
        """``(reads, writes)`` summed over objects, per iteration."""
        return self.reads.sum(axis=0), self.writes.sum(axis=0)

    def totals_per_object(self) -> tuple[np.ndarray, np.ndarray]:
        """``(reads, writes)`` summed over iterations, per object."""
        return self.reads.sum(axis=1), self.writes.sum(axis=1)

    def iterations_touched(self, main_loop_only: bool = True) -> np.ndarray:
        """Per object: in how many iterations was it referenced at all?

        With *main_loop_only*, iteration 0 (pre/post phases) is excluded —
        that is Figure 7's x-axis.
        """
        refs = self.refs
        if main_loop_only and refs.shape[1] > 0:
            refs = refs[:, 1:]
        return (refs > 0).sum(axis=1)

    def merge(self, other: "ObjectStatsTable") -> None:
        """Fold another table in (object ids must be from the same space)."""
        self._ensure(other.n_objects, other.n_iterations)
        self._reads[: other.n_objects, : other.n_iterations] += other.reads
        self._writes[: other.n_objects, : other.n_iterations] += other.writes
