"""Fast whole-stack analyzer (paper §III-A, method 1).

Records reads and writes to the *entire program stack*: a reference is a
stack reference iff its address lies between the maximum (deepest) stack
pointer the program has reached and the top of the stack — "assuming that
the stack pointer grows downwards". Light-weight: one range compare per
reference, all vectorized. Produces Table V: per-iteration stack
read/write ratio and the stack share of all memory references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instrument.api import Probe
from repro.memory.stack import StackManager
from repro.trace.record import RefBatch


@dataclass
class StackSummary:
    """Table V row for one application."""

    #: per-iteration (index 0 = pre/post phase) stack reads and writes
    stack_reads: np.ndarray
    stack_writes: np.ndarray
    total_refs: np.ndarray

    def rw_ratio(self, iteration: int | None = None, skip_first: bool = False) -> float:
        """Stack read/write ratio, for one iteration or over the main loop.

        *skip_first* reproduces CAM's "20.39 (11.46)" presentation: the
        paper quotes iterations 2..10 separately because iteration 1
        behaves differently.
        """
        if iteration is not None:
            r = self.stack_reads[iteration]
            w = self.stack_writes[iteration]
        else:
            start = 2 if skip_first else 1
            r = self.stack_reads[start:].sum()
            w = self.stack_writes[start:].sum()
        return float(r) / float(w) if w else float("inf")

    @property
    def reference_percentage(self) -> float:
        """Share of all main-loop references that touch the stack."""
        stack = (self.stack_reads + self.stack_writes)[1:].sum()
        total = self.total_refs[1:].sum()
        return float(stack) / float(total) if total else 0.0


class FastStackAnalyzer(Probe):
    """Counts stack vs non-stack references with one vectorized compare."""

    def __init__(self, stack: StackManager) -> None:
        self._stack = stack
        self._stack_top = stack.segment.limit  # top of the stack segment
        n = 12
        self._stack_reads = np.zeros(n, np.int64)
        self._stack_writes = np.zeros(n, np.int64)
        self._total = np.zeros(n, np.int64)
        self._max_iter = 0

    def _ensure(self, iteration: int) -> None:
        if iteration >= self._stack_reads.shape[0]:
            grow = max(iteration + 1, 2 * self._stack_reads.shape[0])
            for name in ("_stack_reads", "_stack_writes", "_total"):
                old = getattr(self, name)
                new = np.zeros(grow, np.int64)
                new[: old.shape[0]] = old
                setattr(self, name, new)
        self._max_iter = max(self._max_iter, iteration)

    def on_batch(self, batch: RefBatch) -> None:
        it = batch.iteration
        self._ensure(it)
        # the paper's test: max-extent SP <= addr < stack top
        lo = np.uint64(self._stack.max_extent)
        hi = np.uint64(self._stack_top)
        on_stack = (batch.addr >= lo) & (batch.addr < hi)
        w = batch.is_write
        self._stack_reads[it] += int((on_stack & ~w).sum())
        self._stack_writes[it] += int((on_stack & w).sum())
        self._total[it] += len(batch)

    def summary(self) -> StackSummary:
        n = self._max_iter + 1
        return StackSummary(
            stack_reads=self._stack_reads[:n].copy(),
            stack_writes=self._stack_writes[:n].copy(),
            total_refs=self._total[:n].copy(),
        )
