"""Comparing two analysis results: input studies, regression tracking.

Formalizes the comparison the input-dependence experiment performs ad hoc:
given two :class:`~repro.scavenger.ScavengerResult`s (different inputs,
different code versions, different ranks), report per-object metric deltas
and classification changes. Heap object names are normalized so callsites
that embed an application name still match across variants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.scavenger.classify import Classified
from repro.scavenger.scavenger import ScavengerResult


@dataclass
class ObjectDelta:
    """One object's change between two runs."""

    name: str
    rw_ratio_a: float
    rw_ratio_b: float
    reference_rate_a: float
    reference_rate_b: float
    size_a: int
    size_b: int
    class_a: str
    class_b: str
    placement_a: str
    placement_b: str

    @property
    def classification_changed(self) -> bool:
        return self.class_a != self.class_b or self.placement_a != self.placement_b

    @property
    def rw_ratio_shift(self) -> float:
        """b/a ratio of the read/write ratios (1.0 = unchanged; inf-aware)."""
        if self.rw_ratio_a == self.rw_ratio_b:
            return 1.0
        if self.rw_ratio_a in (0.0, float("inf")) or self.rw_ratio_b == float("inf"):
            return float("inf")
        if self.rw_ratio_a == 0:
            return float("inf")
        return self.rw_ratio_b / self.rw_ratio_a


@dataclass
class ComparisonReport:
    """Everything that differs between two analyses."""

    shared: list[ObjectDelta] = field(default_factory=list)
    only_in_a: list[str] = field(default_factory=list)
    only_in_b: list[str] = field(default_factory=list)

    @property
    def changed(self) -> list[ObjectDelta]:
        return [d for d in self.shared if d.classification_changed]

    @property
    def stable_fraction(self) -> float:
        """Fraction of shared objects whose classification held."""
        if not self.shared:
            return 1.0
        return 1.0 - len(self.changed) / len(self.shared)


_HEAP_NAME = re.compile(r"^heap:[^:]+:")


def normalize_object_name(name: str) -> str:
    """Strip an app-name component out of heap callsite names."""
    return _HEAP_NAME.sub("heap:", name)


def compare_results(a: ScavengerResult, b: ScavengerResult) -> ComparisonReport:
    """Join two results on (normalized) object names."""

    def index(result: ScavengerResult) -> dict[str, Classified]:
        return {normalize_object_name(c.metrics.name): c for c in result.classified}

    ia, ib = index(a), index(b)
    report = ComparisonReport(
        only_in_a=sorted(set(ia) - set(ib)),
        only_in_b=sorted(set(ib) - set(ia)),
    )
    for name in sorted(set(ia) & set(ib)):
        ca, cb = ia[name], ib[name]
        report.shared.append(
            ObjectDelta(
                name=name,
                rw_ratio_a=ca.metrics.rw_ratio,
                rw_ratio_b=cb.metrics.rw_ratio,
                reference_rate_a=ca.metrics.reference_rate,
                reference_rate_b=cb.metrics.reference_rate,
                size_a=ca.metrics.size,
                size_b=cb.metrics.size,
                class_a=ca.nvram_class.value,
                class_b=cb.nvram_class.value,
                placement_a=ca.placement.value,
                placement_b=cb.placement.value,
            )
        )
    return report
