"""NV-SCAVENGER configuration and classification thresholds."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScavengerConfig:
    """Tuning knobs for the analyzers.

    The thresholds encode the paper's reading of its own figures:
    objects with read/write ratio > ``rw_friendly`` are NVRAM candidates
    (the paper repeatedly singles out r/w > 50); ``rw_moderate`` marks the
    "larger than 10" population of Figure 2; ``write_share_cap`` implements
    the third metric's corner case — an object with a high r/w ratio may
    still absorb a large fraction of all writes and must then be kept out
    of category-1 NVRAM.
    """

    #: number of buckets the bucketized object index starts with
    initial_buckets: int = 64
    #: rebuild (double bucket count) when mean bucket occupancy exceeds this
    max_mean_occupancy: float = 8.0
    #: entries in the software LRU object cache (paper: "a small cache")
    lru_capacity: int = 16
    #: cache-line granularity of the LRU cache keys
    lru_block_bytes: int = 64
    #: r/w ratio above which an object is strongly NVRAM friendly
    rw_friendly: float = 50.0
    #: r/w ratio above which an object is moderately NVRAM friendly
    rw_moderate: float = 10.0
    #: an object absorbing more than this fraction of ALL writes is barred
    #: from category-1 NVRAM regardless of its own r/w ratio
    write_share_cap: float = 0.05
    #: objects touched in at most this fraction of iterations are migration
    #: candidates (Fig 7 discussion)
    sparse_use_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.initial_buckets <= 0:
            raise ConfigurationError("initial_buckets must be positive")
        if self.max_mean_occupancy <= 0:
            raise ConfigurationError("max_mean_occupancy must be positive")
        if self.lru_capacity <= 0:
            raise ConfigurationError("lru_capacity must be positive")
        if self.lru_block_bytes <= 0 or self.lru_block_bytes & (self.lru_block_bytes - 1):
            raise ConfigurationError("lru_block_bytes must be a positive power of two")
        if not (0 < self.write_share_cap <= 1):
            raise ConfigurationError("write_share_cap must be in (0, 1]")
        if not (0 < self.sparse_use_fraction <= 1):
            raise ConfigurationError("sparse_use_fraction must be in (0, 1]")
        if self.rw_moderate > self.rw_friendly:
            raise ConfigurationError("rw_moderate must not exceed rw_friendly")
