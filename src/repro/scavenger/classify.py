"""NVRAM-friendliness classification and placement recommendations.

Implements the paper's management policy (§II): "place memory pages in
NVRAM as much as possible while avoiding performance-critical frequent
accesses (especially write accesses) to NVRAM". The three metrics combine
into a placement verdict per memory object, per NVRAM category:

* category 1 (PCRAM/Flash: slow reads AND writes) additionally bars objects
  with a high share of total traffic even when their r/w ratio is high
  (metric 3's corner case);
* category 2 (STTRAM: DRAM-like reads, slow writes) admits everything that
  is not write-intensive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.scavenger.config import ScavengerConfig
from repro.scavenger.metrics import ObjectMetrics


class NVRAMClass(enum.Enum):
    """How strongly an object's access pattern favors NVRAM."""

    UNTOUCHED = "untouched"  # never referenced in the window: ideal
    READ_ONLY = "read_only"  # zero writes
    HIGH_RW = "high_rw"  # r/w ratio > rw_friendly (default 50)
    MODERATE_RW = "moderate_rw"  # r/w ratio > rw_moderate (default 10)
    READ_LEANING = "read_leaning"  # r/w ratio > 1
    WRITE_HEAVY = "write_heavy"  # r/w ratio <= 1


class Placement(enum.Enum):
    """Recommended home in a horizontal hybrid memory system."""

    NVRAM = "nvram"  # safe for category 1 and 2
    NVRAM_CAT2 = "nvram_cat2"  # safe for STTRAM-like NVRAM only
    MIGRATABLE = "migratable"  # sparsely/unevenly used: dynamic migration
    DRAM = "dram"


@dataclass
class Classified:
    """Classification outcome for one object."""

    metrics: ObjectMetrics
    nvram_class: NVRAMClass
    placement: Placement
    #: why the object was kept out of (category-1) NVRAM, if applicable
    reason: str = ""


def classify_one(
    m: ObjectMetrics,
    config: ScavengerConfig,
    n_main_iterations: int,
) -> Classified:
    """Apply the §II policy to one object."""
    # 1. access-pattern class
    if m.untouched:
        klass = NVRAMClass.UNTOUCHED
    elif m.read_only:
        klass = NVRAMClass.READ_ONLY
    elif m.rw_ratio > config.rw_friendly:
        klass = NVRAMClass.HIGH_RW
    elif m.rw_ratio > config.rw_moderate:
        klass = NVRAMClass.MODERATE_RW
    elif m.rw_ratio > 1.0:
        klass = NVRAMClass.READ_LEANING
    else:
        klass = NVRAMClass.WRITE_HEAVY

    # 2. placement. Only data with NO write traffic in the instrumented
    # window is safe for category-1 NVRAM without dynamic support — the
    # paper's §VII-B reading: even r/w > 50 structures "can be placed into
    # NVRAM too, especially NVRAM of the second category".
    if klass in (NVRAMClass.UNTOUCHED, NVRAMClass.READ_ONLY):
        return Classified(m, klass, Placement.NVRAM)
    if klass is NVRAMClass.HIGH_RW:
        # metric-3 corner case: high r/w ratio but large absolute write share
        if m.write_share > config.write_share_cap:
            return Classified(
                m,
                klass,
                Placement.NVRAM_CAT2,
                reason=(
                    f"write share {m.write_share:.1%} exceeds cap "
                    f"{config.write_share_cap:.1%}; category-2 NVRAM only"
                ),
            )
        return Classified(m, klass, Placement.NVRAM_CAT2)
    if klass is NVRAMClass.MODERATE_RW:
        return Classified(m, klass, Placement.NVRAM_CAT2)
    # sparsely used objects are migration candidates even when write-leaning
    if (
        n_main_iterations > 0
        and 0 < m.iterations_touched <= config.sparse_use_fraction * n_main_iterations
    ):
        return Classified(
            m,
            klass,
            Placement.MIGRATABLE,
            reason=(
                f"touched in only {m.iterations_touched}/{n_main_iterations} "
                "iterations; migrate to NVRAM when idle"
            ),
        )
    if klass is NVRAMClass.READ_LEANING:
        return Classified(m, klass, Placement.NVRAM_CAT2)
    return Classified(m, klass, Placement.DRAM)


def classify_objects(
    rows: list[ObjectMetrics],
    config: ScavengerConfig | None = None,
    n_main_iterations: int = 10,
) -> list[Classified]:
    """Classify all objects; rows come back in the input order."""
    cfg = config or ScavengerConfig()
    return [classify_one(m, cfg, n_main_iterations) for m in rows]


def nvram_eligible_bytes(classified: list[Classified], category: int = 2) -> int:
    """Bytes placeable in NVRAM of the given category (1 or 2).

    Category 1 (PCRAM-like) admits only the NVRAM placement (untouched and
    read-only data); category 2 (STTRAM-like) additionally admits
    NVRAM_CAT2 and MIGRATABLE objects. The paper's headline — "31% and 27%
    of the memory working sets are suitable for NVRAM" — corresponds to
    the category-1 measure over the footprint.
    """
    if category not in (1, 2):
        raise ValueError(f"NVRAM category must be 1 or 2, got {category}")
    ok = {Placement.NVRAM}
    if category == 2:
        ok.add(Placement.NVRAM_CAT2)
        ok.add(Placement.MIGRATABLE)
    return sum(c.metrics.size for c in classified if c.placement in ok)
