"""Global-data analyzer (paper §III-C).

Consumes symbol registrations (the stand-in for libdwarf extraction) —
including merged FORTRAN common blocks, which arrive as single union
objects — and attributes global-segment references to them.
"""

from __future__ import annotations

import numpy as np

from repro.instrument.api import Probe
from repro.memory.layout import Segment
from repro.memory.object import MemoryObject, ObjectKind
from repro.scavenger.buckets import SortedRangeIndex
from repro.scavenger.object_stats import ObjectStatsTable
from repro.trace.record import RefBatch


class GlobalAnalyzer(Probe):
    """Attributes global-segment references to (merged) global objects."""

    def __init__(self, global_segment: Segment) -> None:
        self._segment = global_segment
        self._index = SortedRangeIndex()
        self.stats = ObjectStatsTable()
        self.objects: dict[int, MemoryObject] = {}
        self.total_refs = 0
        self.global_refs = 0
        self.unattributed = 0

    def on_global(self, obj: MemoryObject) -> None:
        if obj.kind != ObjectKind.GLOBAL:
            return
        self.objects[obj.oid] = obj
        self._index.insert(obj.oid, obj.base, obj.limit)

    def on_batch(self, batch: RefBatch) -> None:
        self.total_refs += len(batch)
        lo = np.uint64(self._segment.base)
        hi = np.uint64(self._segment.limit)
        in_global = (batch.addr >= lo) & (batch.addr < hi)
        if not in_global.any():
            return
        sub = batch.take(in_global)
        self.global_refs += len(sub)
        oids = self._index.lookup_batch(sub.addr)
        self.unattributed += int((oids < 0).sum())
        self.stats.add_batch(oids, sub.is_write, sub.iteration)
