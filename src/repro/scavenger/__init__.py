"""NV-SCAVENGER: the paper's core contribution.

Statistically reports NVRAM-related access patterns per *memory object*
(stack frame / heap allocation / global symbol), per main-loop iteration:
read/write ratios, memory reference rates, object sizes, cross-iteration
variance, and cumulative memory-usage distributions — then classifies each
object's NVRAM friendliness for a horizontal hybrid DRAM+NVRAM system.
"""

from repro.scavenger.config import ScavengerConfig
from repro.scavenger.object_stats import ObjectStatsTable
from repro.scavenger.buckets import SortedRangeIndex, BucketIndex, LinearScanIndex
from repro.scavenger.lru import LRUObjectCache
from repro.scavenger.stackfast import FastStackAnalyzer
from repro.scavenger.stackslow import SlowStackAnalyzer
from repro.scavenger.heap_analysis import HeapAnalyzer
from repro.scavenger.global_analysis import GlobalAnalyzer
from repro.scavenger.metrics import ObjectMetrics, compute_object_metrics
from repro.scavenger.variance import VarianceAnalysis, compute_variance
from repro.scavenger.usage import UsageAnalysis, compute_usage
from repro.scavenger.classify import Placement, NVRAMClass, classify_objects
from repro.scavenger.locality import LocalityAnalyzer, LocalityScores
from repro.scavenger.offline import RawTraceRecorder, OfflineAnalyzer, OfflineResult
from repro.scavenger.compare import (
    compare_results,
    ComparisonReport,
    ObjectDelta,
    normalize_object_name,
)
from repro.scavenger.scavenger import (
    NVScavenger,
    ScavengerReplaySession,
    ScavengerResult,
)

__all__ = [
    "ScavengerConfig",
    "ObjectStatsTable",
    "SortedRangeIndex",
    "BucketIndex",
    "LinearScanIndex",
    "LRUObjectCache",
    "FastStackAnalyzer",
    "SlowStackAnalyzer",
    "HeapAnalyzer",
    "GlobalAnalyzer",
    "ObjectMetrics",
    "compute_object_metrics",
    "VarianceAnalysis",
    "compute_variance",
    "UsageAnalysis",
    "compute_usage",
    "Placement",
    "NVRAMClass",
    "classify_objects",
    "NVScavenger",
    "ScavengerReplaySession",
    "ScavengerResult",
    "LocalityAnalyzer",
    "LocalityScores",
    "RawTraceRecorder",
    "OfflineAnalyzer",
    "OfflineResult",
    "compare_results",
    "ComparisonReport",
    "ObjectDelta",
    "normalize_object_name",
]
