"""Small software LRU cache of hot objects (paper §III-D).

"We also employ a small software cache using LRU algorithm to save
information for most often used memory objects. This scheme provides a
shortcut for updating access records." Keys are cache-block-aligned
addresses; values are object ids. Wraps any scalar lookup index.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.scavenger.buckets import MISS


class LRUObjectCache:
    """Block-granular address → oid LRU cache in front of a scalar index."""

    def __init__(self, capacity: int = 16, block_bytes: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ValueError("block_bytes must be a positive power of two")
        self.capacity = capacity
        self._shift = block_bytes.bit_length() - 1
        self._map: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _key(self, addr: int) -> int:
        return addr >> self._shift

    def get(self, addr: int) -> int:
        """Cached oid for *addr*, or :data:`MISS`."""
        key = self._key(addr)
        oid = self._map.get(key, MISS)
        if oid != MISS:
            self._map.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return oid

    def put(self, addr: int, oid: int) -> None:
        key = self._key(addr)
        self._map[key] = oid
        self._map.move_to_end(key)
        while len(self._map) > self.capacity:
            self._map.popitem(last=False)

    def invalidate_object(self, oid: int) -> None:
        """Drop all blocks cached for *oid* (on free/remove)."""
        stale = [k for k, v in self._map.items() if v == oid]
        for k in stale:
            del self._map[k]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._map)


class CachedIndex:
    """A scalar index composed with an :class:`LRUObjectCache`.

    Mirrors the paper's lookup path: consult the LRU shortcut first, fall
    back to the bucket search, then install the mapping.
    """

    def __init__(self, index, cache: LRUObjectCache) -> None:
        self.index = index
        self.cache = cache

    def insert(self, oid: int, base: int, limit: int) -> None:
        self.index.insert(oid, base, limit)

    def remove(self, oid: int) -> None:
        self.index.remove(oid)
        self.cache.invalidate_object(oid)

    def lookup(self, addr: int) -> int:
        oid = self.cache.get(addr)
        if oid != MISS:
            return oid
        oid = self.index.lookup(addr)
        if oid != MISS:
            self.cache.put(addr, oid)
        return oid

    def lookup_batch(self, addrs: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self.lookup(int(a)) for a in addrs), dtype=np.int32, count=len(addrs)
        )

    def __len__(self) -> int:
        return len(self.index)
