"""Heap analyzer (paper §III-B).

Intercepts allocation events (malloc/free/realloc arrive as probe events,
mirroring interception at the system-library level), keeps an index of
*live* heap ranges, attributes every heap-segment reference to its object,
and accumulates per-object per-iteration counts. Identity rules — signature
folding, dead flags, address aliasing after free — are enforced by the
address space; this analyzer additionally tracks object *lifetimes* so the
usage analysis can exclude short-term heap objects (Fig 7).
"""

from __future__ import annotations

import numpy as np

from repro.instrument.api import Probe
from repro.memory.layout import Segment
from repro.memory.object import MemoryObject, ObjectKind
from repro.scavenger.buckets import SortedRangeIndex
from repro.scavenger.object_stats import ObjectStatsTable
from repro.trace.record import RefBatch


class HeapAnalyzer(Probe):
    """Attributes heap references to live heap objects and counts them."""

    def __init__(self, heap_segment: Segment) -> None:
        self._segment = heap_segment
        self._index = SortedRangeIndex()
        self.stats = ObjectStatsTable()
        self.objects: dict[int, MemoryObject] = {}
        #: oid -> iteration the object was last freed in (for lifetime study)
        self.freed_in: dict[int, int] = {}
        #: oid -> set of iterations during which (re)allocation happened
        self.allocated_in: dict[int, set[int]] = {}
        self._iteration = 0
        self.total_refs = 0
        self.heap_refs = 0
        self.unattributed = 0

    # ------------------------------------------------------------------
    def on_iteration(self, iteration: int) -> None:
        self._iteration = iteration

    def on_alloc(self, obj: MemoryObject) -> None:
        if obj.kind != ObjectKind.HEAP:
            return
        self.objects[obj.oid] = obj
        self.allocated_in.setdefault(obj.oid, set()).add(self._iteration)
        # a resurrected object reuses its oid and base; (re)insert its range
        self._index.remove(obj.oid)
        self._index.insert(obj.oid, obj.base, obj.limit)

    def on_free(self, obj: MemoryObject) -> None:
        if obj.kind != ObjectKind.HEAP:
            return
        self._index.remove(obj.oid)
        self.freed_in[obj.oid] = self._iteration

    # ------------------------------------------------------------------
    def on_batch(self, batch: RefBatch) -> None:
        self.total_refs += len(batch)
        lo = np.uint64(self._segment.base)
        hi = np.uint64(self._segment.limit)
        in_heap = (batch.addr >= lo) & (batch.addr < hi)
        if not in_heap.any():
            return
        sub = batch.take(in_heap)
        self.heap_refs += len(sub)
        oids = self._index.lookup_batch(sub.addr)
        self.unattributed += int((oids < 0).sum())
        self.stats.add_batch(oids, sub.is_write, sub.iteration)

    # ------------------------------------------------------------------
    def is_short_term(self, oid: int) -> bool:
        """Short-term heap objects are allocated *and* freed inside the main
        loop (birth iteration > 0); Figure 7 excludes them because their
        transient size "does not represent a real opportunity for NVRAM"."""
        obj = self.objects.get(oid)
        if obj is None:
            return False
        allocs = self.allocated_in.get(oid, set())
        born_in_loop = all(it > 0 for it in allocs) and bool(allocs)
        was_freed = oid in self.freed_in
        return born_in_loop and was_freed

    def long_term_oids(self) -> list[int]:
        return [oid for oid in self.objects if not self.is_short_term(oid)]
