"""Cross-iteration variance of access patterns (paper §VII-C, Figs 8–11).

For each memory object, the per-iteration read/write ratio and memory
reference rate are normalized by the object's iteration-1 values; the
figures then show, per iteration, the distribution of these normalized
values over objects. "There are more than 60% memory objects whose
normalized values stay within [1,2) for each iteration" is the headline —
stable patterns mean NVRAM-friendly objects can be placed statically,
without migration overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scavenger.object_stats import ObjectStatsTable

#: Normalized-value bins used by Figures 8–11 (the last bin is open-ended).
DEFAULT_BINS: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, np.inf)


@dataclass
class VarianceAnalysis:
    """Distributions of normalized per-iteration metrics.

    ``rw_hist[b, i]`` = fraction of eligible objects whose normalized
    read/write ratio in main-loop iteration ``i`` falls into bin ``b``
    (bins per :data:`DEFAULT_BINS`); likewise ``rate_hist`` for the
    normalized reference rate. Iterations are indexed from 1 (iteration 1 is
    the normalization basis, so every object sits in the [1,2) bin there).
    """

    bins: np.ndarray
    rw_hist: np.ndarray
    rate_hist: np.ndarray
    n_objects: int
    iterations: np.ndarray

    def stable_fraction(self, iteration: int, lo: float = 1.0, hi: float = 2.0) -> float:
        """Fraction of objects with BOTH normalized metrics within [lo, hi)."""
        # conservative: use the min of the two per-bin fractions' [1,2) mass
        b = int(np.searchsorted(self.bins, lo, side="right") - 1)
        i = int(np.searchsorted(self.iterations, iteration))
        return float(min(self.rw_hist[b, i], self.rate_hist[b, i]))

    def min_stable_fraction(self) -> float:
        """The worst over iterations of the [1,2)-bin mass (paper: >60%)."""
        b = int(np.searchsorted(self.bins, 1.0, side="right") - 1)
        if self.rw_hist.shape[1] == 0:
            return 0.0
        return float(
            min(self.rw_hist[b, :].min(), self.rate_hist[b, :].min())
        )


def compute_variance(
    stats: ObjectStatsTable,
    eligible_oids: np.ndarray | None = None,
    bins: tuple[float, ...] = DEFAULT_BINS,
) -> VarianceAnalysis:
    """Build Figures 8–11 from a stats table.

    Only objects referenced in iteration 1 are eligible (the normalization
    basis must exist); *eligible_oids* can restrict further (e.g. to global
    + long-term heap objects).
    """
    bins_arr = np.asarray(bins, dtype=np.float64)
    reads = stats.reads
    writes = stats.writes
    n_it = stats.n_iterations
    if n_it < 2:
        return VarianceAnalysis(
            bins=bins_arr,
            rw_hist=np.zeros((len(bins) - 1, 0)),
            rate_hist=np.zeros((len(bins) - 1, 0)),
            n_objects=0,
            iterations=np.empty(0, np.int64),
        )
    if eligible_oids is None:
        eligible = np.arange(stats.n_objects)
    else:
        eligible = np.asarray(eligible_oids, dtype=np.int64)
        eligible = eligible[eligible < stats.n_objects]
    refs1 = reads[eligible, 1] + writes[eligible, 1]
    eligible = eligible[refs1 > 0]
    n = len(eligible)
    iterations = np.arange(1, n_it)
    rw_hist = np.zeros((len(bins) - 1, len(iterations)))
    rate_hist = np.zeros_like(rw_hist)
    if n == 0:
        return VarianceAnalysis(bins_arr, rw_hist, rate_hist, 0, iterations)

    # read/write ratio per object per iteration; read-only iterations get a
    # large finite surrogate so normalization ratios stay meaningful
    r = reads[eligible][:, 1:].astype(np.float64)
    w = writes[eligible][:, 1:].astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        rw = np.where(w > 0, r / np.maximum(w, 1e-300), np.where(r > 0, np.inf, 0.0))
    rate = (r + w)

    basis_rw = rw[:, :1]
    basis_rate = rate[:, :1]
    norm_rw = _normalized_matrix(rw, basis_rw)
    norm_rate = _normalized_matrix(rate, basis_rate)

    for j in range(len(iterations)):
        rw_hist[:, j] = _bin_fractions(norm_rw[:, j], bins_arr)
        rate_hist[:, j] = _bin_fractions(norm_rate[:, j], bins_arr)
    return VarianceAnalysis(bins_arr, rw_hist, rate_hist, n, iterations)


def _normalized_matrix(values: np.ndarray, basis: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        out = values / basis
    # inf/inf (read-only both iterations) and 0/0 count as unchanged
    both_inf = np.isinf(values) & np.isinf(np.broadcast_to(basis, values.shape))
    both_zero = (values == 0) & (np.broadcast_to(basis, values.shape) == 0)
    out[both_inf | both_zero] = 1.0
    return out


def _bin_fractions(vals: np.ndarray, bins: np.ndarray) -> np.ndarray:
    ok = ~np.isnan(vals)
    vals = vals[ok]
    if vals.size == 0:
        return np.zeros(len(bins) - 1)
    idx = np.clip(np.searchsorted(bins, vals, side="right") - 1, 0, len(bins) - 2)
    counts = np.bincount(idx, minlength=len(bins) - 1)
    return counts / vals.size
