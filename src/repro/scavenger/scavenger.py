"""The NV-SCAVENGER facade: run an instrumented program through all
analyzers and assemble every analysis the paper reports.

The paper runs three tools (stack / heap / global) in parallel over the
same execution; here all analyzers subscribe to one instrumented run via a
fan-out probe, which is behaviorally identical and cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.instrument.api import FanoutProbe, Probe
from repro.instrument.runtime import InstrumentedRuntime
from repro.memory.layout import AddressLayout
from repro.memory.object import MemoryObject
from repro.scavenger.classify import Classified, classify_objects
from repro.scavenger.config import ScavengerConfig
from repro.scavenger.global_analysis import GlobalAnalyzer
from repro.scavenger.heap_analysis import HeapAnalyzer
from repro.scavenger.metrics import ObjectMetrics, compute_object_metrics
from repro.scavenger.object_stats import ObjectStatsTable
from repro.scavenger.stackfast import FastStackAnalyzer, StackSummary
from repro.scavenger.stackslow import FrameStats, SlowStackAnalyzer
from repro.scavenger.usage import UsageAnalysis, compute_usage
from repro.scavenger.variance import VarianceAnalysis, compute_variance

#: A program is anything that drives an instrumented runtime.
Program = Callable[[InstrumentedRuntime], None]


@dataclass
class ScavengerResult:
    """Everything NV-SCAVENGER reports for one application run."""

    stack_summary: StackSummary  # Table V
    frame_stats: list[FrameStats]  # Figure 2
    object_metrics: list[ObjectMetrics]  # Figures 3-6 (global + heap)
    usage: UsageAnalysis  # Figure 7
    variance: VarianceAnalysis  # Figures 8-11
    classified: list[Classified]
    total_refs: int
    total_reads: int
    total_writes: int
    footprint_bytes: int
    n_main_iterations: int
    #: id -> object for every tracked global/heap object
    objects: dict[int, MemoryObject]

    @property
    def rw_ratio(self) -> float:
        """Whole-run read/write ratio."""
        return self.total_reads / self.total_writes if self.total_writes else float("inf")

    def metrics_by_name(self, name: str) -> ObjectMetrics:
        for m in self.object_metrics:
            if m.name == name:
                return m
        raise KeyError(name)


class NVScavenger:
    """Builds the analyzer pipeline, runs a program, assembles the result."""

    def __init__(
        self,
        config: ScavengerConfig | None = None,
        layout: AddressLayout | None = None,
        extra_probes: Sequence[Probe] = (),
        buffer_capacity: int = 1 << 16,
    ) -> None:
        self.config = config or ScavengerConfig()
        self._layout = layout or AddressLayout()
        self._extra = list(extra_probes)
        self._buffer_capacity = buffer_capacity

    def analyze(self, program: Program, n_main_iterations: int = 10) -> ScavengerResult:
        """Instrument *program* and compute every analysis.

        The program is responsible for calling ``rt.begin_iteration`` as its
        main loop advances; *n_main_iterations* is used for classification
        (the sparse-use rule needs to know the loop length).
        """
        layout = self._layout
        # the analyzers need the concrete address space, which only exists
        # once the runtime does — build runtime first with a fanout shell.
        fanout = FanoutProbe([])
        rt = InstrumentedRuntime(fanout, layout=layout, buffer_capacity=self._buffer_capacity)
        fast = FastStackAnalyzer(rt.space.stack)
        slow = SlowStackAnalyzer(rt.space.stack)
        heap = HeapAnalyzer(layout.heap_segment)
        glob = GlobalAnalyzer(layout.global_segment)
        for probe in (fast, slow, heap, glob, *self._extra):
            fanout.add(probe)

        program(rt)
        rt.finish()
        return self._assemble(
            fast, slow, heap, glob, rt.space.footprint_bytes(), n_main_iterations
        )

    def replay_session(self) -> "ScavengerReplaySession":
        """Build the analyzer pipeline for a *recorded* run.

        Feed a recorded event stream into ``session.probe`` (e.g. via
        :meth:`repro.engine.PipelineEngine.replay`, passing
        ``session.stack`` so the recorded stack extents are restored),
        then call ``session.result(...)`` to assemble the same
        :class:`ScavengerResult` a live :meth:`analyze` would produce.
        """
        return ScavengerReplaySession(self, self._layout)

    # ------------------------------------------------------------------
    def _assemble(
        self,
        fast: FastStackAnalyzer,
        slow: SlowStackAnalyzer,
        heap: HeapAnalyzer,
        glob: GlobalAnalyzer,
        footprint_bytes: int,
        n_main_iterations: int,
    ) -> ScavengerResult:
        # combined global + heap stats (oids share one dense space)
        combined = ObjectStatsTable()
        combined.merge(glob.stats)
        combined.merge(heap.stats)
        objects: dict[int, MemoryObject] = {}
        objects.update(glob.objects)
        objects.update(heap.objects)

        stack_summary = fast.summary()
        total_refs = int(stack_summary.total_refs.sum())
        reads_m, writes_m = combined.totals_per_iteration()
        stack_reads = int(stack_summary.stack_reads.sum())
        stack_writes = int(stack_summary.stack_writes.sum())
        total_reads = int(reads_m.sum()) + stack_reads
        total_writes = int(writes_m.sum()) + stack_writes

        rows = compute_object_metrics(objects, combined, total_refs)
        short_term = {oid for oid in heap.objects if heap.is_short_term(oid)}
        usage = compute_usage(rows, exclude_oids=short_term)
        eligible = np.array(
            [m.oid for m in rows if m.oid not in short_term], dtype=np.int64
        )
        variance = compute_variance(combined, eligible_oids=eligible)
        classified = classify_objects(rows, self.config, n_main_iterations)

        return ScavengerResult(
            stack_summary=stack_summary,
            frame_stats=slow.frame_stats(),
            object_metrics=rows,
            usage=usage,
            variance=variance,
            classified=classified,
            total_refs=total_refs,
            total_reads=total_reads,
            total_writes=total_writes,
            footprint_bytes=footprint_bytes,
            n_main_iterations=n_main_iterations,
            objects=objects,
        )


class ScavengerReplaySession:
    """The analyzer pipeline wired for replaying a recorded run.

    ``probe`` is the fan-out to feed (all four analyzers plus the
    scavenger's ``extra_probes``); ``stack`` is the replay stack view whose
    ``max_extent`` the engine restores before each batch, so the fast stack
    analyzer observes exactly the live run's ambient state.
    """

    def __init__(self, scavenger: NVScavenger, layout: AddressLayout) -> None:
        from repro.engine.events import ReplayStackView

        self._scavenger = scavenger
        self.stack = ReplayStackView(layout.stack_segment)
        self._fast = FastStackAnalyzer(self.stack)
        self._slow = SlowStackAnalyzer(self.stack)
        self._heap = HeapAnalyzer(layout.heap_segment)
        self._glob = GlobalAnalyzer(layout.global_segment)
        self.probe = FanoutProbe(
            [self._fast, self._slow, self._heap, self._glob, *scavenger._extra]
        )

    def result(self, footprint_bytes: int, n_main_iterations: int = 10) -> ScavengerResult:
        """Assemble the replayed run's result (footprint comes from the
        artifact's recorded metadata — replay has no address space)."""
        return self._scavenger._assemble(
            self._fast, self._slow, self._heap, self._glob,
            footprint_bytes, n_main_iterations,
        )
