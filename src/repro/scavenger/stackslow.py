"""Slow per-frame stack analyzer (paper §III-A, method 2).

Instruments call and return points to maintain a shadow stack, records each
routine's base frame address, and attributes every stack reference to the
owning routine's frame by walking the stack — including references landing
*underneath* the current routine's frame, which belong to the earlier
routine that allocated that data. Routines are identified by name (the
paper uses the routine's starting address as its signature; our runtime's
routine names play that role).

Produces Figure 2: per-routine-frame read/write ratios and memory
reference rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instrument.api import Probe
from repro.memory.object import MemoryObject
from repro.memory.stack import StackFrame, StackManager
from repro.scavenger.object_stats import ObjectStatsTable
from repro.trace.record import RefBatch


@dataclass
class FrameStats:
    """Figure-2 row: one routine's stack frame over the whole run."""

    routine: str
    reads: int
    writes: int
    refs: int
    #: share of ALL references (stack + non-stack) this frame received
    reference_rate: float
    max_frame_bytes: int

    @property
    def rw_ratio(self) -> float:
        return self.reads / self.writes if self.writes else float("inf")


class SlowStackAnalyzer(Probe):
    """Attributes stack references to routine frames via a mirrored shadow
    stack; vectorized with one ``searchsorted`` per batch."""

    def __init__(self, stack: StackManager) -> None:
        self._segment_limit = stack.segment.limit
        self._mirror: list[tuple[str, int, int]] = []  # (routine, sp, base)
        self._rid_by_routine: dict[str, int] = {}
        self._routines: list[str] = []
        self._max_frame_bytes: list[int] = []
        self.stats = ObjectStatsTable()
        self._total_refs = 0
        self._unattributed_stack_refs = 0

    # ------------------------------------------------------------------
    def _rid(self, routine: str) -> int:
        rid = self._rid_by_routine.get(routine)
        if rid is None:
            rid = len(self._routines)
            self._rid_by_routine[routine] = rid
            self._routines.append(routine)
            self._max_frame_bytes.append(0)
        return rid

    def on_call(self, frame: StackFrame, frame_obj: MemoryObject) -> None:
        rid = self._rid(frame.routine)
        self._max_frame_bytes[rid] = max(self._max_frame_bytes[rid], frame.size)
        self._mirror.append((frame.routine, frame.sp, frame.base))

    def on_ret(self, frame: StackFrame) -> None:
        if self._mirror:
            self._mirror.pop()

    # ------------------------------------------------------------------
    def on_batch(self, batch: RefBatch) -> None:
        self._total_refs += len(batch)
        if not self._mirror:
            return
        # frames partition [sp_innermost, base_outermost); boundaries are
        # the ascending sp values plus the outermost base.
        sps = np.array([sp for _, sp, _ in self._mirror[::-1]], dtype=np.uint64)
        top = np.uint64(self._mirror[0][2])
        boundaries = np.append(sps, top)
        addrs = batch.addr
        on_stack = (addrs >= boundaries[0]) & (addrs < np.uint64(self._segment_limit))
        if not on_stack.any():
            return
        k = np.searchsorted(boundaries, addrs[on_stack], side="right")
        # k in [1, len(sps)] maps to a frame; k == len(boundaries) means the
        # address lies above all frames (e.g. red zone) — unattributed.
        valid = (k >= 1) & (k <= len(sps))
        self._unattributed_stack_refs += int((~valid).sum())
        frame_idx = len(self._mirror) - k[valid]  # 0 = outermost
        routines = [self._mirror[i][0] for i in range(len(self._mirror))]
        rids = np.array([self._rid(r) for r in routines], dtype=np.int32)
        oid_per_ref = rids[frame_idx]
        self.stats.add_batch(oid_per_ref, batch.is_write[on_stack][valid], batch.iteration)

    # ------------------------------------------------------------------
    def frame_stats(self) -> list[FrameStats]:
        """Per-routine totals, Figure 2's data set."""
        reads, writes = self.stats.totals_per_object()
        out = []
        for rid, routine in enumerate(self._routines):
            r = int(reads[rid]) if rid < len(reads) else 0
            w = int(writes[rid]) if rid < len(writes) else 0
            refs = r + w
            out.append(
                FrameStats(
                    routine=routine,
                    reads=r,
                    writes=w,
                    refs=refs,
                    reference_rate=refs / self._total_refs if self._total_refs else 0.0,
                    max_frame_bytes=self._max_frame_bytes[rid],
                )
            )
        return out

    @property
    def total_refs(self) -> int:
        return self._total_refs

    @property
    def unattributed_stack_refs(self) -> int:
        return self._unattributed_stack_refs
