"""Address-to-object lookup structures (paper §III-D).

For every memory reference NV-SCAVENGER "must search all recorded memory
objects to identify which memory object is accessed". The paper speeds this
up by (a) dividing the address space into buckets with a masking scheme and
dynamically re-dividing so objects spread evenly, and (b) a small LRU
software cache for hot objects.

Three interchangeable implementations are provided:

* :class:`LinearScanIndex` — the naive O(objects) baseline the paper starts
  from (kept for the ablation benchmark);
* :class:`BucketIndex` — the paper's bucket + masking design with dynamic
  rebalancing;
* :class:`SortedRangeIndex` — a fully vectorized sorted-ranges index used on
  the package's hot path (``np.searchsorted`` over batch address arrays).

``lookup_batch`` is vectorized on **all three** implementations: each keeps
a lazily rebuilt sorted-array view and answers a whole address batch with
one ``searchsorted`` plus one masked compare. The indexed ranges are
normally pairwise disjoint (live heap objects, merged global objects);
:class:`LinearScanIndex` and :class:`BucketIndex` additionally tolerate
overlapping ranges by falling back to their scalar first-match scan for
that batch. Scalar ``lookup`` (what the ablation benchmark measures, and
what feeds ``BucketIndex.scan_steps``) is untouched.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

MISS = -1

#: sorted-array view: (bases, limits, oids, disjoint)
_SortedView = tuple[np.ndarray, np.ndarray, np.ndarray, bool]


def _build_sorted(items: list[tuple[int, int, int]]) -> _SortedView:
    """Sort ``(base, limit, oid)`` triples by base for vectorized lookup."""
    arr = sorted(items, key=lambda r: r[0])
    bases = np.array([r[0] for r in arr], dtype=np.uint64)
    limits = np.array([r[1] for r in arr], dtype=np.uint64)
    oids = np.array([r[2] for r in arr], dtype=np.int32)
    disjoint = bool(np.all(bases[1:] >= limits[:-1]))
    return bases, limits, oids, disjoint


def _sorted_lookup(
    bases: np.ndarray, limits: np.ndarray, oids: np.ndarray, addrs: np.ndarray
) -> np.ndarray:
    """Resolve *addrs* against sorted disjoint ranges; MISS elsewhere."""
    out = np.full(addrs.shape, MISS, dtype=np.int32)
    if bases.size == 0:
        return out
    pos = np.searchsorted(bases, addrs, side="right") - 1
    valid = pos >= 0
    pos_clipped = np.where(valid, pos, 0)
    inside = valid & (addrs < limits[pos_clipped])
    out[inside] = oids[pos_clipped[inside]]
    return out


class LinearScanIndex:
    """Scan every recorded range; the pre-optimization baseline.

    The scalar ``lookup`` is the baseline the ablation measures; batch
    lookups use the shared sorted-array path (with a scalar first-match
    fallback when ranges overlap).
    """

    def __init__(self) -> None:
        self._ranges: list[tuple[int, int, int]] = []  # (base, limit, oid)
        self._view: _SortedView | None = None

    def insert(self, oid: int, base: int, limit: int) -> None:
        if limit <= base:
            raise SimulationError(f"empty range [{base:#x},{limit:#x}) for oid {oid}")
        self._ranges.append((base, limit, oid))
        self._view = None

    def remove(self, oid: int) -> None:
        self._ranges = [r for r in self._ranges if r[2] != oid]
        self._view = None

    def lookup(self, addr: int) -> int:
        for base, limit, oid in self._ranges:
            if base <= addr < limit:
                return oid
        return MISS

    def lookup_batch(self, addrs: np.ndarray) -> np.ndarray:
        if self._view is None:
            self._view = _build_sorted(self._ranges)
        bases, limits, oids, disjoint = self._view
        if not disjoint:
            return np.fromiter(
                (self.lookup(int(a)) for a in addrs), dtype=np.int32, count=len(addrs)
            )
        return _sorted_lookup(
            bases, limits, oids, np.ascontiguousarray(addrs, dtype=np.uint64)
        )

    def __len__(self) -> int:
        return len(self._ranges)


class BucketIndex:
    """The paper's bucketized lookup with masking and dynamic rebalancing.

    The address span is divided into ``2**shift_buckets`` equal buckets; a
    reference address is masked/shifted to pick its bucket, then only that
    bucket's ranges are scanned. A range spanning several buckets is
    registered in each. When mean occupancy exceeds a threshold the bucket
    count doubles and everything is redistributed ("dynamically divide the
    memory address space so that the memory objects can be evenly
    distributed between buckets").
    """

    def __init__(
        self,
        span: tuple[int, int],
        n_buckets: int = 64,
        max_mean_occupancy: float = 8.0,
    ) -> None:
        lo, hi = span
        if hi <= lo:
            raise SimulationError(f"empty address span [{lo:#x},{hi:#x})")
        if n_buckets <= 0:
            raise SimulationError("n_buckets must be positive")
        self._lo = lo
        self._hi = hi
        self._max_mean = max_mean_occupancy
        self._ranges: dict[int, tuple[int, int]] = {}  # oid -> (base, limit)
        self._view: _SortedView | None = None
        self._set_buckets(n_buckets)
        self.rebuilds = 0
        self.scan_steps = 0  # ranges examined by scalar lookups, for the ablation

    # ------------------------------------------------------------------
    def _set_buckets(self, n: int) -> None:
        # round up to a power of two so bucket selection is a shift
        n_pow2 = 1 << (n - 1).bit_length()
        self._n_buckets = n_pow2
        span = self._hi - self._lo
        self._bucket_bytes = max(1, -(-span // n_pow2))  # ceil div
        self._buckets: list[list[tuple[int, int, int]]] = [[] for _ in range(n_pow2)]
        for oid, (base, limit) in self._ranges.items():
            self._place(oid, base, limit)

    def _bucket_of(self, addr: int) -> int:
        idx = (addr - self._lo) // self._bucket_bytes
        return min(max(idx, 0), self._n_buckets - 1)

    def _place(self, oid: int, base: int, limit: int) -> None:
        for b in range(self._bucket_of(base), self._bucket_of(limit - 1) + 1):
            self._buckets[b].append((base, limit, oid))

    # ------------------------------------------------------------------
    def insert(self, oid: int, base: int, limit: int) -> None:
        if limit <= base:
            raise SimulationError(f"empty range [{base:#x},{limit:#x}) for oid {oid}")
        if not (self._lo <= base and limit <= self._hi):
            raise SimulationError(
                f"range [{base:#x},{limit:#x}) outside indexed span "
                f"[{self._lo:#x},{self._hi:#x})"
            )
        self._ranges[oid] = (base, limit)
        self._view = None
        self._place(oid, base, limit)
        mean = len(self._ranges) / self._n_buckets
        if mean > self._max_mean:
            self.rebuilds += 1
            self._set_buckets(self._n_buckets * 2)

    def remove(self, oid: int) -> None:
        rng = self._ranges.pop(oid, None)
        if rng is None:
            return
        self._view = None
        base, limit = rng
        for b in range(self._bucket_of(base), self._bucket_of(limit - 1) + 1):
            self._buckets[b] = [r for r in self._buckets[b] if r[2] != oid]

    def lookup(self, addr: int) -> int:
        if not (self._lo <= addr < self._hi):
            return MISS
        for base, limit, oid in self._buckets[self._bucket_of(addr)]:
            self.scan_steps += 1
            if base <= addr < limit:
                return oid
        return MISS

    def lookup_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized batch lookup (does not advance ``scan_steps``: that
        counter models the paper's per-reference scan cost, which the
        scalar path measures)."""
        if self._view is None:
            self._view = _build_sorted(
                [(base, limit, oid) for oid, (base, limit) in self._ranges.items()]
            )
        bases, limits, oids, disjoint = self._view
        if not disjoint:
            return np.fromiter(
                (self.lookup(int(a)) for a in addrs), dtype=np.int32, count=len(addrs)
            )
        return _sorted_lookup(
            bases, limits, oids, np.ascontiguousarray(addrs, dtype=np.uint64)
        )

    def __len__(self) -> int:
        return len(self._ranges)

    @property
    def n_buckets(self) -> int:
        return self._n_buckets

    def occupancy(self) -> np.ndarray:
        """Ranges registered per bucket (spanning ranges counted per bucket)."""
        return np.array([len(b) for b in self._buckets], dtype=np.int64)


class SortedRangeIndex:
    """Vectorized lookup over sorted disjoint ranges.

    Lookup of a whole address batch is one ``searchsorted`` plus one masked
    compare — this is what the package's analyzers use on the hot path.
    Mutations mark the structure dirty; the sorted arrays are rebuilt lazily
    on the next lookup.
    """

    def __init__(self) -> None:
        self._ranges: dict[int, tuple[int, int]] = {}
        self._dirty = True
        self._bases = np.empty(0, np.uint64)
        self._limits = np.empty(0, np.uint64)
        self._oids = np.empty(0, np.int32)

    def insert(self, oid: int, base: int, limit: int) -> None:
        if limit <= base:
            raise SimulationError(f"empty range [{base:#x},{limit:#x}) for oid {oid}")
        self._ranges[oid] = (base, limit)
        self._dirty = True

    def remove(self, oid: int) -> None:
        if self._ranges.pop(oid, None) is not None:
            self._dirty = True

    def _rebuild(self) -> None:
        self._bases, self._limits, self._oids, disjoint = _build_sorted(
            [(base, limit, oid) for oid, (base, limit) in self._ranges.items()]
        )
        if not disjoint:
            raise SimulationError("SortedRangeIndex requires disjoint ranges")
        self._dirty = False

    def lookup_batch(self, addrs: np.ndarray) -> np.ndarray:
        if self._dirty:
            self._rebuild()
        return _sorted_lookup(
            self._bases, self._limits, self._oids,
            np.ascontiguousarray(addrs, dtype=np.uint64),
        )

    def lookup(self, addr: int) -> int:
        return int(self.lookup_batch(np.array([addr], dtype=np.uint64))[0])

    def __len__(self) -> int:
        return len(self._ranges)
