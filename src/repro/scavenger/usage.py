"""Cumulative memory-usage distribution across time steps (Fig 7).

"A data point (x, y) represents that there are y MB memory objects used in
no more than x iterations." Iteration 0 on the x-axis stands for data used
only in the pre-computing / post-processing phases (or not at all during
the instrumented window). Short-term heap objects — allocated and freed in
the middle of the computation — are excluded, because their transient size
is not a real NVRAM opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scavenger.metrics import ObjectMetrics
from repro.util.stats import weighted_cdf
from repro.util.units import MiB


@dataclass
class UsageAnalysis:
    """Figure 7 for one application."""

    #: x-axis: distinct iteration counts present
    iteration_counts: np.ndarray
    #: y-axis: cumulative bytes of objects used in <= x iterations
    cumulative_bytes: np.ndarray
    total_bytes: int
    n_objects: int

    @property
    def unused_in_main_loop_bytes(self) -> int:
        """Mass at x = 0: data never touched inside the main loop."""
        if self.iteration_counts.size and self.iteration_counts[0] == 0:
            return int(self.cumulative_bytes[0])
        return 0

    @property
    def unused_fraction(self) -> float:
        """Fraction of the analyzed footprint unused in the main loop
        (the paper's 24.3% for Nek5000, 11.5% for CAM)."""
        return (
            self.unused_in_main_loop_bytes / self.total_bytes if self.total_bytes else 0.0
        )

    def evenness(self, n_iterations: int) -> float:
        """Fraction of bytes touched in EVERY main-loop iteration; GTC's
        'pretty much evenly touched' shows up as a value near 1."""
        if self.total_bytes == 0 or self.iteration_counts.size == 0:
            return 0.0
        full = self.iteration_counts == n_iterations
        if not full.any():
            return 0.0
        below = self.cumulative_bytes[~full]
        everywhere = self.total_bytes - (int(below[-1]) if below.size else 0)
        return everywhere / self.total_bytes

    def as_mb_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) with y in MiB — what the figure plots."""
        return self.iteration_counts, self.cumulative_bytes / MiB


def compute_usage(
    rows: list[ObjectMetrics],
    exclude_oids: set[int] | None = None,
) -> UsageAnalysis:
    """Build Figure 7 from metric rows.

    *exclude_oids* removes short-term heap objects (provided by
    :meth:`repro.scavenger.heap_analysis.HeapAnalyzer.long_term_oids`'s
    complement).
    """
    exclude = exclude_oids or set()
    kept = [m for m in rows if m.oid not in exclude]
    if not kept:
        return UsageAnalysis(np.empty(0, np.int64), np.empty(0, np.int64), 0, 0)
    touched = np.array([m.iterations_touched for m in kept], dtype=np.int64)
    sizes = np.array([m.size for m in kept], dtype=np.int64)
    xs, cum = weighted_cdf(touched, sizes)
    return UsageAnalysis(
        iteration_counts=xs.astype(np.int64),
        cumulative_bytes=cum.astype(np.int64),
        total_bytes=int(sizes.sum()),
        n_objects=len(kept),
    )
