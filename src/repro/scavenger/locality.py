"""Spatial and temporal locality scoring of reference streams.

The paper's §II argument for the *horizontal* hybrid design rests on
locality: "for workloads with poor locality, the DRAM cache actually lowers
performance and increases energy consumption", citing Weinberg et al.'s
locality quantification [13]. This module computes comparable scores from
the instrumented stream so the claim can be evaluated per application:

* **temporal locality** — from the reuse-*time* distribution of
  line-granular accesses (references between consecutive touches of the
  same line; the standard vectorizable surrogate for LRU stack distance);
* **spatial locality** — from the stride distribution: the probability mass
  of small strides, log-weighted per Weinberg's scheme.

Both scores land in [0, 1]; dense streaming sweeps score high spatially,
uniform random traffic scores near zero on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.instrument.api import Probe
from repro.trace.record import RefBatch


@dataclass
class LocalityScores:
    """The two Weinberg-style scores plus their raw distributions."""

    temporal: float
    spatial: float
    #: reuse-time histogram over log2 bins (index i = reuse time in
    #: [2^(i-1), 2^i); bin 0 = immediate reuse; last bin = cold/first touch)
    reuse_histogram: np.ndarray
    #: stride histogram over log2 bins of |stride| in lines (index 0 = same
    #: line, 1 = adjacent, ...; last bin = far jumps)
    stride_histogram: np.ndarray
    refs: int


class LocalityAnalyzer(Probe):
    """Streams batches into reuse-time and stride statistics.

    Everything is vectorized: per batch, the last-touch table is updated
    with ``np.unique`` bookkeeping and reuse times are computed from a
    global reference clock.
    """

    def __init__(self, line_bytes: int = 64, n_bins: int = 24) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ConfigurationError("line_bytes must be a positive power of two")
        if n_bins <= 2:
            raise ConfigurationError("n_bins must exceed 2")
        self._shift = line_bytes.bit_length() - 1
        self._n_bins = n_bins
        self._last_touch: dict[int, int] = {}  # line -> global ref index
        self._reuse = np.zeros(n_bins, np.int64)
        self._stride = np.zeros(n_bins, np.int64)
        self._last_line: int | None = None
        self._clock = 0

    # ------------------------------------------------------------------
    def on_batch(self, batch: RefBatch) -> None:
        lines = (batch.addr >> np.uint64(self._shift)).astype(np.int64)
        n = len(lines)
        if n == 0:
            return
        # ---- strides (vectorized)
        if self._last_line is not None:
            seq = np.concatenate([[self._last_line], lines])
        else:
            seq = lines
        strides = np.abs(np.diff(seq))
        bins = np.zeros(strides.shape, np.int64)
        nz = strides > 0
        bins[nz] = np.minimum(
            np.log2(strides[nz]).astype(np.int64) + 1, self._n_bins - 1
        )
        np.add.at(self._stride, bins, 1)
        self._last_line = int(lines[-1])

        # ---- reuse times: resolve within-batch repeats + the carry table
        idx = np.arange(self._clock, self._clock + n, dtype=np.int64)
        order = np.lexsort((idx, lines))
        sl, si = lines[order], idx[order]
        same_as_prev = np.zeros(n, dtype=bool)
        same_as_prev[1:] = sl[1:] == sl[:-1]
        prev_idx = np.empty(n, dtype=np.int64)
        prev_idx[0] = -1
        prev_idx[1:] = si[:-1]
        rt = np.where(same_as_prev, si - prev_idx, -1)
        # first occurrence of each line in the batch: consult the carry table
        firsts = ~same_as_prev
        first_lines = sl[firsts]
        first_idx = si[firsts]
        carry = np.array(
            [self._last_touch.get(int(l), -1) for l in first_lines], dtype=np.int64
        )
        rt_first = np.where(carry >= 0, first_idx - carry, -1)
        rt[firsts] = rt_first
        # histogram
        cold = rt < 0
        self._reuse[self._n_bins - 1] += int(cold.sum())
        warm = rt[~cold]
        if warm.size:
            b = np.zeros(warm.shape, np.int64)
            gt1 = warm > 1
            b[gt1] = np.minimum(
                np.log2(warm[gt1]).astype(np.int64) + 1, self._n_bins - 2
            )
            np.add.at(self._reuse, b, 1)
        # update carry table with each line's LAST index in this batch
        last_mask = np.ones(n, dtype=bool)
        last_mask[:-1] = sl[1:] != sl[:-1]
        for line, i in zip(sl[last_mask].tolist(), si[last_mask].tolist()):
            self._last_touch[line] = i
        self._clock += n

    # ------------------------------------------------------------------
    @property
    def refs(self) -> int:
        return self._clock

    def scores(self) -> LocalityScores:
        """Fold the histograms into the two [0, 1] scores."""
        reuse_total = self._reuse.sum()
        stride_total = self._stride.sum()
        n = self._n_bins
        # temporal: short reuse times weighted high; cold refs weigh zero
        weights_t = np.zeros(n)
        weights_t[: n - 1] = 1.0 / (2.0 ** np.arange(n - 1)) ** 0.25
        temporal = float((self._reuse * weights_t).sum() / reuse_total) if reuse_total else 0.0
        # spatial: small strides weighted high (bin 0 = same line)
        weights_s = 1.0 / (2.0 ** np.arange(n)) ** 0.5
        spatial = float((self._stride * weights_s).sum() / stride_total) if stride_total else 0.0
        return LocalityScores(
            temporal=temporal,
            spatial=spatial,
            reuse_histogram=self._reuse.copy(),
            stride_histogram=self._stride.copy(),
            refs=self._clock,
        )
