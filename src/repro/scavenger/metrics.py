"""Per-object metric rows: the three metrics of §II plus derived views.

1. **Read/write ratio** — higher favors NVRAM (especially category 2);
2. **memory size** — static power savings scale with bytes placed in NVRAM;
3. **memory reference rate** — catches the corner case where an object with
   a high r/w ratio still absorbs a large share of total (write) traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memory.object import MemoryObject, ObjectKind
from repro.scavenger.object_stats import ObjectStatsTable


@dataclass
class ObjectMetrics:
    """One row of Figures 3–6 (plus bookkeeping used elsewhere)."""

    oid: int
    name: str
    kind: ObjectKind
    size: int
    base: int
    reads: int
    writes: int
    #: this object's share of all references in the run
    reference_rate: float
    #: this object's share of all WRITE references in the run (metric 3's
    #: corner case)
    write_share: float
    #: per-iteration reads/writes (index 0 = pre/post phases)
    reads_per_iter: np.ndarray = field(repr=False)
    writes_per_iter: np.ndarray = field(repr=False)
    #: number of main-loop iterations in which the object was referenced
    iterations_touched: int = 0
    tags: frozenset[str] = frozenset()

    @property
    def refs(self) -> int:
        return self.reads + self.writes

    @property
    def rw_ratio(self) -> float:
        """Read/write ratio; ``inf`` for read-only objects."""
        return self.reads / self.writes if self.writes else float("inf")

    @property
    def read_only(self) -> bool:
        return self.writes == 0 and self.reads > 0

    @property
    def untouched(self) -> bool:
        """Never referenced during the instrumented window."""
        return self.refs == 0


def compute_object_metrics(
    objects: dict[int, MemoryObject],
    stats: ObjectStatsTable,
    total_refs: int,
    total_writes: int | None = None,
) -> list[ObjectMetrics]:
    """Join the object table with its counters into metric rows.

    *total_refs* should be the run's full reference count (all segments) so
    reference rates are comparable across the three analyzers; pass the
    analyzer's own count to get segment-local rates instead.
    """
    reads_m = stats.reads
    writes_m = stats.writes
    if total_writes is None:
        total_writes = int(writes_m.sum())
    touched = stats.iterations_touched(main_loop_only=True)
    rows: list[ObjectMetrics] = []
    for oid, obj in sorted(objects.items()):
        if oid < stats.n_objects:
            r_per = reads_m[oid].copy()
            w_per = writes_m[oid].copy()
            it_touched = int(touched[oid])
        else:  # object registered but never referenced
            r_per = np.zeros(stats.n_iterations, np.int64)
            w_per = np.zeros_like(r_per)
            it_touched = 0
        r = int(r_per.sum())
        w = int(w_per.sum())
        rows.append(
            ObjectMetrics(
                oid=oid,
                name=obj.name,
                kind=obj.kind,
                size=obj.size,
                base=obj.base,
                reads=r,
                writes=w,
                reference_rate=(r + w) / total_refs if total_refs else 0.0,
                write_share=w / total_writes if total_writes else 0.0,
                reads_per_iter=r_per,
                writes_per_iter=w_per,
                iterations_touched=it_touched,
                tags=obj.tags,
            )
        )
    return rows


def read_only_bytes(rows: list[ObjectMetrics]) -> int:
    """Total size of read-only objects (the paper's 59 MB / 94 MB numbers)."""
    return sum(m.size for m in rows if m.read_only)


def high_rw_bytes(rows: list[ObjectMetrics], threshold: float = 50.0) -> int:
    """Total size of objects with finite r/w ratio above *threshold*
    (the paper's 38.6 MB / 4.8 MB numbers)."""
    return sum(
        m.size for m in rows if m.writes > 0 and m.rw_ratio > threshold
    )


def untouched_bytes(rows: list[ObjectMetrics]) -> int:
    """Total size of objects never used in the main loop (Fig 7's x=0 mass)."""
    return sum(m.size for m in rows if m.iterations_touched == 0)
