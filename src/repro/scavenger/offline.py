"""Offline trace processing (paper §III-D, the design that was rejected).

"One possible solution is to offload major instrumentation functionality
into an offline tool ... However, it is not a scalable solution. A short
serial HPC application can easily produce a trace of tens of gigabytes of
data." We implement the offline pipeline anyway — record raw references to
a trace file during the run, attribute and analyze later — both because it
is genuinely useful at small scales (run once, analyze many ways) and so
the ablation benchmark can quantify the paper's scalability argument
(trace bytes per reference, end-to-end time vs the on-the-fly design).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.instrument.api import Probe
from repro.memory.object import MemoryObject
from repro.scavenger.buckets import SortedRangeIndex
from repro.scavenger.object_stats import ObjectStatsTable
from repro.trace.io import TraceReader, TraceWriter
from repro.trace.record import RefBatch


class RawTraceRecorder(Probe):
    """The online half: record raw references + an object-event journal.

    The journal captures allocation lifecycles so the offline pass can
    rebuild the live-range timeline (trace batches are interleaved with
    journal events in program order because the runtime flushes its buffer
    at allocation events).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._writer = TraceWriter(path)
        #: (kind, oid, name, base, size, alive-event) in arrival order,
        #: interleaved with batch indices
        self.journal: list[tuple] = []
        self._batch_counter = 0
        self.refs = 0

    def on_batch(self, batch: RefBatch) -> None:
        self._writer.append(batch)
        if len(batch):
            self.refs += len(batch)
            self._batch_counter += 1

    def on_global(self, obj: MemoryObject) -> None:
        self.journal.append(("global", self._batch_counter, obj.oid, obj.name,
                             obj.base, obj.size))

    def on_alloc(self, obj: MemoryObject) -> None:
        self.journal.append(("alloc", self._batch_counter, obj.oid, obj.name,
                             obj.base, obj.size))

    def on_free(self, obj: MemoryObject) -> None:
        self.journal.append(("free", self._batch_counter, obj.oid, obj.name,
                             obj.base, obj.size))

    def on_finish(self) -> None:
        self._writer.close()


@dataclass
class OfflineResult:
    """What the offline pass produces (the online analyzers' equivalent)."""

    stats: ObjectStatsTable
    objects: dict[int, tuple[str, int, int]]  # oid -> (name, base, size)
    total_refs: int
    unattributed: int


class OfflineAnalyzer:
    """The offline half: replay the trace against the journal's timeline."""

    def __init__(self, trace_path: str | os.PathLike, journal: list[tuple]) -> None:
        self._path = trace_path
        self._journal = journal

    def run(self) -> OfflineResult:
        stats = ObjectStatsTable()
        index = SortedRangeIndex()
        objects: dict[int, tuple[str, int, int]] = {}
        # journal events grouped by the batch index they precede
        events_at: dict[int, list[tuple]] = {}
        for ev in self._journal:
            events_at.setdefault(ev[1], []).append(ev)
        total = unattributed = 0
        with TraceReader(self._path) as reader:
            for batch_idx, batch in enumerate(reader):
                for ev in events_at.pop(batch_idx, []):
                    kind, _, oid, name, base, size = ev
                    if kind == "free":
                        index.remove(oid)
                    else:
                        objects[oid] = (name, base, size)
                        index.remove(oid)
                        index.insert(oid, base, base + size)
                oids = index.lookup_batch(batch.addr)
                unattributed += int((oids < 0).sum())
                stats.add_batch(oids, batch.is_write, batch.iteration)
                total += len(batch)
        return OfflineResult(
            stats=stats, objects=objects, total_refs=total, unattributed=unattributed
        )


def trace_bytes_per_reference(path: str | os.PathLike, refs: int) -> float:
    """The scalability metric the paper's argument turns on."""
    if refs <= 0:
        return 0.0
    return os.path.getsize(path) / refs
