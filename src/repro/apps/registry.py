"""Application registry: construct model apps by name."""

from __future__ import annotations

from repro.apps.base import ModelApp
from repro.apps.cam import CAM
from repro.apps.gtc import GTC
from repro.apps.nek5000 import Nek5000
from repro.apps.s3d import S3D
from repro.errors import ConfigurationError

#: The paper's four applications, in its presentation order.
APPLICATIONS: dict[str, type[ModelApp]] = {
    "nek5000": Nek5000,
    "cam": CAM,
    "gtc": GTC,
    "s3d": S3D,
}


def create_app(
    name: str,
    scale: float = 1.0 / 64.0,
    refs_per_iteration: int = 100_000,
    n_iterations: int = 10,
    seed: int = 0,
) -> ModelApp:
    """Instantiate a model application by (case-insensitive) name."""
    cls = APPLICATIONS.get(name.lower())
    if cls is None:
        raise ConfigurationError(
            f"unknown application {name!r}; know {sorted(APPLICATIONS)}"
        )
    return cls(
        scale=scale,
        refs_per_iteration=refs_per_iteration,
        n_iterations=n_iterations,
        seed=seed,
    )
