"""Data-driven model-application engine.

An application is a declarative table of *structures* (global / common /
heap memory objects) and *routines* (stack frames with locals), each with a
per-iteration read/write weight. The engine normalizes weights into a
reference budget per iteration, so an app's aggregate statistics (stack
reference share, read/write ratios, per-object reference rates) are set
directly by its spec — which is how we transplant the paper's measured
characteristics onto executable programs.

Weights are *fractions of all references in one main-loop iteration*; the
sum over all specs need not be 1 (it is normalized), but writing specs so
they sum to ~1 keeps them readable as "share of traffic".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.instrument.runtime import InstrumentedRuntime, SimArray
from repro.util.rng import make_rng, stable_hash32
from repro.util.units import MiB
from repro.workloads import synthetic


@dataclass(frozen=True)
class AppInfo:
    """Table I row."""

    name: str
    input_description: str
    description: str
    paper_footprint_mb: float


@dataclass(frozen=True)
class StructureSpec:
    """One global/common/heap memory object of the model app.

    ``footprint_fraction`` — share of the app's (scaled) footprint.
    ``reads`` / ``writes`` — per-iteration reference weights (fractions of
    the iteration budget).
    ``phase`` — "main" data is touched in main-loop iterations; "pre" /
    "post" data is touched only outside the loop (Figure 7's x = 0 mass).
    ``active_iterations`` — restrict main-phase accesses to some iterations
    (Figure 7's unevenly-touched objects).
    ``rate_jitter`` — log-uniform per-iteration multiplicative jitter on
    the reference counts (Nek5000's "quite diverse reference rates").
    ``short_term`` — heap object allocated and freed inside every
    iteration (excluded from Figure 7 by the analyzer).
    """

    name: str
    segment: str  # "global" | "common" | "heap"
    footprint_fraction: float
    reads: float
    writes: float
    pattern: str = "sequential"
    phase: str = "main"
    active_iterations: tuple[int, ...] | None = None
    rate_jitter: float = 0.0
    short_term: bool = False
    tags: frozenset[str] = field(default_factory=frozenset)
    #: for "common": member name/fraction pairs re-partitioning the block
    members: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.segment not in ("global", "common", "heap"):
            raise ConfigurationError(f"{self.name}: bad segment {self.segment!r}")
        if self.phase not in ("pre", "main", "post"):
            raise ConfigurationError(f"{self.name}: bad phase {self.phase!r}")
        if self.pattern not in ("sequential", "strided", "random", "hotspot", "gather"):
            raise ConfigurationError(f"{self.name}: bad pattern {self.pattern!r}")
        if self.footprint_fraction <= 0:
            raise ConfigurationError(f"{self.name}: footprint fraction must be positive")
        if self.reads < 0 or self.writes < 0:
            raise ConfigurationError(f"{self.name}: weights must be non-negative")
        if self.short_term and self.segment != "heap":
            raise ConfigurationError(f"{self.name}: only heap objects can be short-term")


@dataclass(frozen=True)
class RoutineSpec:
    """One routine whose stack frame the app exercises.

    ``first_iteration_scale`` multiplies (reads, writes) in iteration 1 —
    CAM's stack behaves differently on the first time step (r/w 11.46
    vs 20.39 afterwards).
    """

    name: str
    local_kb: float
    reads: float
    writes: float
    first_iteration_scale: tuple[float, float] = (1.0, 1.0)

    def __post_init__(self) -> None:
        if self.local_kb <= 0:
            raise ConfigurationError(f"{self.name}: local_kb must be positive")
        if self.reads < 0 or self.writes < 0:
            raise ConfigurationError(f"{self.name}: weights must be non-negative")


class ModelApp:
    """Executable model application (a `Program`).

    Parameters
    ----------
    scale:
        Footprint scale relative to the paper's per-task footprint
        (default 1/64: Nek5000's 824 MB becomes ~12.9 MB).
    refs_per_iteration:
        Total memory references issued per main-loop iteration.
    n_iterations:
        Main-loop length (the paper instruments 10).
    """

    info: AppInfo
    structures: Sequence[StructureSpec]
    routines: Sequence[RoutineSpec]
    #: calibration constants: uniform multipliers applied to all structure
    #: (global/heap) traffic and to all stack write traffic, used to pin the
    #: aggregate Table V numbers without perturbing per-object ratios
    structure_traffic_scale: float = 1.0
    stack_write_scale: float = 1.0
    #: non-memory instructions accounted per emitted reference: each
    #: recorded reference stands for one inner-loop body (FLOPs, address
    #: arithmetic, control) of the real code, so this sets the app's
    #: compute-to-memory balance for the performance model (Fig 12)
    instructions_per_ref: float = 100.0

    def __init__(
        self,
        scale: float = 1.0 / 64.0,
        refs_per_iteration: int = 100_000,
        n_iterations: int = 10,
        seed: int = 0,
    ) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if refs_per_iteration <= 0:
            raise ConfigurationError("refs_per_iteration must be positive")
        if n_iterations <= 0:
            raise ConfigurationError("n_iterations must be positive")
        self.scale = scale
        self.refs_per_iteration = refs_per_iteration
        self.n_iterations = n_iterations
        self.seed = seed
        self._validate_spec()

    # ------------------------------------------------------------------
    def _validate_spec(self) -> None:
        names = [s.name for s in self.structures] + [r.name for r in self.routines]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"{self.info.name}: duplicate spec names")

    @property
    def footprint_bytes(self) -> int:
        return int(self.info.paper_footprint_mb * MiB * self.scale)

    def _struct_bytes(self, s: StructureSpec) -> int:
        b = int(self.footprint_bytes * s.footprint_fraction)
        return max(b - b % 8, 64)

    def _weight_norm(self) -> float:
        sts, sws = self.structure_traffic_scale, self.stack_write_scale
        total = sum(
            (s.reads + s.writes) * sts for s in self.structures if s.phase == "main"
        )
        total += sum(r.reads + r.writes * sws for r in self.routines)
        if total <= 0:
            raise ConfigurationError(f"{self.info.name}: zero total access weight")
        return total

    def _count(self, weight: float, norm: float) -> int:
        return int(round(weight / norm * self.refs_per_iteration))

    def _offsets(self, pattern: str, n: int, count: int, rng, phase: int = 0) -> np.ndarray:
        if count <= 0:
            return np.empty(0, np.int64)
        if pattern == "sequential":
            # sweep the WHOLE array each iteration, the way a solver streams
            # its fields: when the array is larger than the access budget,
            # stride so coverage stays complete (each access a new region);
            # when smaller, wrap densely (a hot, cache-resident buffer).
            # The per-iteration phase keeps successive sweeps from landing
            # on the cached remnants of the previous one — the emitted
            # references are samples of a full-array traversal.
            step = max(1, n // count)
            return (np.arange(count, dtype=np.int64) * step + phase) % n
        if pattern == "strided":
            # line-granular strided sweep (8 doubles = one 64 B line)
            step = max(8, n // count)
            return (np.arange(count, dtype=np.int64) * step + phase) % n
        if pattern == "random":
            return synthetic.random_uniform(n, count, rng)
        if pattern == "gather":
            return synthetic.gather_indices(n, count, clustering=0.6, rng=rng)
        return synthetic.hotspot(n, count, rng=rng)

    def _jitter(self, s: StructureSpec, iteration: int) -> float:
        """Deterministic per-(structure, iteration) rate multiplier."""
        if s.rate_jitter <= 0:
            return 1.0
        h = stable_hash32((self.info.name, s.name, iteration, self.seed))
        u = (h / 0xFFFFFFFF) * 2.0 - 1.0  # [-1, 1]
        return math.exp(u * s.rate_jitter)

    # ------------------------------------------------------------------
    def __call__(self, rt: InstrumentedRuntime) -> None:
        norm = self._weight_norm()
        rng = make_rng(self.seed)
        handles: dict[str, SimArray] = {}

        # -------------------- pre-computing phase (iteration 0)
        rt.begin_iteration(0)
        for s in self.structures:
            nbytes = self._struct_bytes(s)
            n_el = max(1, nbytes // 8)
            if s.segment == "global":
                handles[s.name] = rt.global_array(s.name, n_el, tags=s.tags)
            elif s.segment == "common":
                members = list(s.members) or [("data", 1.0)]
                mem = [(mn, max(1, int(n_el * fr))) for mn, fr in members]
                handles[s.name] = rt.common_block(s.name, mem, tags=s.tags)
            elif not s.short_term:
                handles[s.name] = rt.malloc(
                    n_el, callsite=f"{self.info.name}:{s.name}", tags=s.tags
                )
        # initialization traffic happens outside the instrumented window
        with rt.paused_recording():
            for s in self.structures:
                if s.segment != "heap" or not s.short_term:
                    arr = handles[s.name]
                    rt.store(arr, synthetic.sequential(arr.n_elements))

        # -------------------- main computation loop
        for it in range(1, self.n_iterations + 1):
            rt.begin_iteration(it)
            self._run_iteration(rt, it, norm, handles, rng)

        # -------------------- post-processing phase
        rt.begin_iteration(0)
        with rt.paused_recording():
            for s in self.structures:
                if s.phase == "post":
                    arr = handles[s.name]
                    rt.load(arr, synthetic.sequential(arr.n_elements))

    # ------------------------------------------------------------------
    def _run_iteration(
        self,
        rt: InstrumentedRuntime,
        it: int,
        norm: float,
        handles: dict[str, SimArray],
        rng,
    ) -> None:
        # short-term heap objects live within the iteration
        short_lived: list[SimArray] = []
        for s in self.structures:
            if s.segment == "heap" and s.short_term:
                nbytes = self._struct_bytes(s)
                arr = rt.malloc(
                    max(1, nbytes // 8), callsite=f"{self.info.name}:{s.name}", tags=s.tags
                )
                handles[s.name] = arr
                short_lived.append(arr)

        # global / heap structure traffic
        for s in self.structures:
            if s.phase != "main":
                continue
            if s.active_iterations is not None and it not in s.active_iterations:
                continue
            arr = handles[s.name]
            jit = self._jitter(s, it) * self.structure_traffic_scale
            n_r = self._count(s.reads * jit, norm)
            n_w = self._count(s.writes * jit, norm)
            phase = stable_hash32((self.info.name, s.name, "phase", it)) % max(
                arr.n_elements, 1
            )
            if n_w:
                rt.store(arr, self._offsets(s.pattern, arr.n_elements, n_w, rng, phase))
            if n_r:
                rt.load(arr, self._offsets(s.pattern, arr.n_elements, n_r, rng, phase))

        # routine stack traffic
        for r in self.routines:
            rs, ws = (r.first_iteration_scale if it == 1 else (1.0, 1.0))
            n_r = self._count(r.reads * rs, norm)
            n_w = self._count(r.writes * ws * self.stack_write_scale, norm)
            if n_r == 0 and n_w == 0:
                continue
            frame_bytes = int(r.local_kb * 1024) + 128
            with rt.call(r.name, frame_bytes=frame_bytes):
                n_el = max(1, int(r.local_kb * 1024) // 8)
                loc = rt.local_array("locals", n_el)
                if n_w:
                    rt.store(loc, synthetic.sequential(n_el, n_w))
                if n_r:
                    rt.load(loc, synthetic.sequential(n_el, n_r))

        # non-memory work proportional to the iteration's reference budget
        rt.compute(int(self.instructions_per_ref * self.refs_per_iteration))

        for arr in short_lived:
            rt.free(arr)
