"""Multi-task (MPI-style) runs: per-task analysis across ranks.

The paper instruments *one task* of each parallel application and reports
per-task footprints (Table I) and statistics — implicitly assuming tasks
behave alike. This module makes that assumption checkable: it runs N
ranks of a model application (each with a rank-derived seed and its own
simulated address space, like an MPI job's per-process memory), analyzes
every rank, and reports the cross-rank spread of the headline statistics.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.apps.base import ModelApp
from repro.errors import ConfigurationError
from repro.scavenger import NVScavenger, ScavengerResult
from repro.util.rng import stable_hash32
from repro.util.stats import StreamingStats


@dataclass
class RankResult:
    """One rank's analysis."""

    rank: int
    result: ScavengerResult


@dataclass
class ParallelRunSummary:
    """Cross-rank statistics for one application."""

    app_name: str
    n_ranks: int
    ranks: list[RankResult]
    stack_rw: StreamingStats
    stack_share: StreamingStats
    footprint: StreamingStats

    def per_task_consistent(self, rel_tolerance: float = 0.05) -> bool:
        """Do all ranks agree on the headline stats within tolerance?"""
        for acc in (self.stack_rw, self.stack_share):
            if acc.mean == 0:
                continue
            spread = (acc.max - acc.min) / acc.mean
            if spread > rel_tolerance:
                return False
        return True


def run_parallel(
    app_cls: type[ModelApp],
    n_ranks: int,
    scale: float = 1.0 / 256.0,
    refs_per_iteration: int = 10_000,
    n_iterations: int = 10,
    base_seed: int = 0,
) -> ParallelRunSummary:
    """Analyze *n_ranks* independent tasks of one application.

    Ranks differ only in their RNG stream (random/gather patterns and
    jitter), exactly like same-program MPI tasks on different subdomains.
    """
    if n_ranks <= 0:
        raise ConfigurationError("n_ranks must be positive")
    ranks: list[RankResult] = []
    rw = StreamingStats()
    share = StreamingStats()
    fp = StreamingStats()
    for rank in range(n_ranks):
        seed = stable_hash32((app_cls.info.name, base_seed, rank))
        app = app_cls(
            scale=scale,
            refs_per_iteration=refs_per_iteration,
            n_iterations=n_iterations,
            seed=seed,
        )
        result = NVScavenger().analyze(app, n_main_iterations=n_iterations)
        ranks.append(RankResult(rank=rank, result=result))
        rw.update(result.stack_summary.rw_ratio())
        share.update(result.stack_summary.reference_percentage)
        fp.update(float(result.footprint_bytes))
    return ParallelRunSummary(
        app_name=app_cls.info.name,
        n_ranks=n_ranks,
        ranks=ranks,
        stack_rw=rw,
        stack_share=share,
        footprint=fp,
    )


def aggregate_footprint_bytes(summary: ParallelRunSummary) -> int:
    """Job-wide footprint: per-task footprints summed across ranks."""
    return int(sum(r.result.footprint_bytes for r in summary.ranks))


def rank_object_agreement(summary: ParallelRunSummary) -> float:
    """Fraction of (named) objects whose NVRAM classification agrees
    across ALL ranks — static placement decisions port between tasks."""
    if not summary.ranks:
        return 1.0
    votes: dict[str, set[str]] = {}
    for r in summary.ranks:
        for c in r.result.classified:
            votes.setdefault(c.metrics.name, set()).add(c.placement.value)
    agree = sum(1 for v in votes.values() if len(v) == 1)
    return agree / len(votes) if votes else 1.0
