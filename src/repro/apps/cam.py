"""CAM model: the community atmosphere model (v3.1, default test case,
608 MB/task — paper Table I).

Published characteristics transplanted into the spec:

* stack: 76.3% of references; read/write ratio 20.39 over iterations 2..10
  but 11.46 in the first iteration (Table V) — modelled with
  ``first_iteration_scale`` write boosts;
* Figure 2's stack population: ~43.3% of stack objects with r/w > 10
  absorbing ~68.9% of total references, ~3.2% with r/w > 50 absorbing
  ~8.9% — the paper names three exemplars, reproduced here by name:
  a routine whose locals hold *interpolation coefficients* derived from
  input arguments, a routine whose locals buffer *temporal computation
  results*, and a routine keeping *computation-dependent constants*;
* ~94 MB (15.5%) read-only global/heap data: Legendre-transform constants,
  cos/sin of longitudes, a hash table of field names, look-up index
  arrays, physics-grid geometry, soil thermal-conductivity invariants;
* 4.8 MB of r/w > 50 data;
* ~70 MB (11.5%) untouched in the main loop (Fig 7).
"""

from __future__ import annotations

from repro.apps.base import AppInfo, ModelApp, RoutineSpec, StructureSpec

_RO = frozenset({"read_only"})


def _hot_routines() -> tuple[RoutineSpec, ...]:
    """The r/w > 10 group: 13 of 31 routines (~42%), ~69% of references."""
    specs = []
    # the ultra routine (r/w > 50, ~8.9% of references): interpolation
    # coefficients computed once per call, then read intensively
    specs.append(
        RoutineSpec("interp_coefficients", local_kb=8, reads=0.0875, writes=0.00145,
                    first_iteration_scale=(1.0, 2.2))
    )
    # twelve high-r/w routines sharing ~60% of references at r/w ~ 30-40
    weights = (0.085, 0.075, 0.068, 0.062, 0.055, 0.050, 0.046, 0.042,
               0.038, 0.032, 0.026, 0.021)
    names = (
        "temporal_results_buffer", "dependent_constants", "legendre_transform",
        "phys_column_driver", "radiation_sw", "radiation_lw", "convect_deep",
        "convect_shallow", "cloud_fraction", "vertical_diffusion",
        "gravity_wave_drag", "tracer_advection",
    )
    for name, wref in zip(names, weights):
        rw = 34.0
        specs.append(
            RoutineSpec(name, local_kb=6, reads=wref * rw / (rw + 1),
                        writes=wref / (rw + 1),
                        first_iteration_scale=(1.0, 2.2))
        )
    return tuple(specs)


def _cool_routines() -> tuple[RoutineSpec, ...]:
    """The low-r/w group: 18 routines, ~7.4% of references at r/w ~ 3.5."""
    specs = []
    weights = (0.0090, 0.0080, 0.0070, 0.0062, 0.0055, 0.0048, 0.0042, 0.0037,
               0.0032, 0.0028, 0.0025, 0.0022, 0.0019, 0.0016, 0.0013, 0.0011,
               0.0009, 0.0007)
    for i, wref in enumerate(weights):
        rw = 3.5
        specs.append(
            RoutineSpec(f"dyn_support_{i:02d}", local_kb=3,
                        reads=wref * rw / (rw + 1), writes=wref / (rw + 1),
                        first_iteration_scale=(1.0, 1.5))
        )
    return tuple(specs)


class CAM(ModelApp):
    """Community atmosphere model application."""

    info = AppInfo(
        name="cam",
        input_description="Default test case (v3.1)",
        description="Atmosphere model",
        paper_footprint_mb=608.0,
    )

    instructions_per_ref = 90.0
    structure_traffic_scale = 0.87
    stack_write_scale = 1.06

    structures = (
        # --- read-only (15.5% of footprint)
        StructureSpec("legendre_constants", "global", 0.050, reads=0.0180, writes=0.0,
                      tags=_RO),
        StructureSpec("cos_sin_longitudes", "global", 0.020, reads=0.0080, writes=0.0,
                      tags=_RO),
        StructureSpec("field_name_hash", "heap", 0.015, reads=0.0050, writes=0.0,
                      pattern="random", tags=_RO),
        StructureSpec("lookup_index_arrays", "global", 0.030, reads=0.0090, writes=0.0,
                      pattern="random", tags=_RO),
        StructureSpec("physics_grid_longitudes", "global", 0.020, reads=0.0060,
                      writes=0.0, tags=_RO),
        StructureSpec("soil_thermal_conductivity", "common", 0.020, reads=0.0040,
                      writes=0.0, tags=_RO,
                      members=(("tkmg", 0.4), ("tksatu", 0.3), ("tkdry", 0.3))),
        # --- r/w > 50 (0.8% of footprint, the paper's 4.8 MB)
        StructureSpec("hybrid_level_coeffs", "global", 0.008, reads=0.0050,
                      writes=0.00008),
        # --- untouched in the main loop (11.5%)
        StructureSpec("init_interp_workspace", "global", 0.070, reads=0.003,
                      writes=0.003, phase="pre"),
        StructureSpec("history_output_buffers", "heap", 0.045, reads=0.002,
                      writes=0.002, phase="post"),
        # --- prognostic state and tendencies
        StructureSpec("state_fields_t_u_v_q", "global", 0.400, reads=0.0900,
                      writes=0.0360, pattern="sequential", rate_jitter=0.25),
        StructureSpec("physics_tendencies", "global", 0.150, reads=0.0200,
                      writes=0.0200, pattern="sequential"),
        StructureSpec("spectral_coefficients", "heap", 0.070, reads=0.0160,
                      writes=0.0040, pattern="strided", rate_jitter=0.25),
        # uneven usage (Fig 7)
        StructureSpec("ozone_forcing", "global", 0.040, reads=0.0030, writes=0.0002,
                      active_iterations=(1, 4, 7, 10)),
        # transient chunk workspace
        StructureSpec("chunk_workspace", "heap", 0.060, reads=0.0040, writes=0.0030,
                      short_term=True),
    )

    routines = _hot_routines() + _cool_routines()
