"""Model scientific applications (paper §VI).

Scaled-down stand-ins for Nek5000, CAM, GTC and S3D whose data structures,
phase structure and per-structure access mixes follow the paper's
published measurements. Each app is a `Program`: it drives an
:class:`~repro.instrument.InstrumentedRuntime` through a pre-computing
phase, ``n_iterations`` main-loop iterations, and a post-processing phase.
"""

from repro.apps.base import ModelApp, StructureSpec, RoutineSpec, AppInfo
from repro.apps.nek5000 import Nek5000
from repro.apps.cam import CAM
from repro.apps.gtc import GTC
from repro.apps.s3d import S3D
from repro.apps.registry import APPLICATIONS, create_app
from repro.apps.variants import (
    VARIANTS,
    VARIANT_OF,
    Nek5000MovingBoundary,
    GTCHighDensity,
    S3DLargeGrid,
    CAMHighResolution,
)
from repro.apps.parallel import (
    ParallelRunSummary,
    RankResult,
    run_parallel,
    aggregate_footprint_bytes,
    rank_object_agreement,
)

__all__ = [
    "ModelApp",
    "StructureSpec",
    "RoutineSpec",
    "AppInfo",
    "Nek5000",
    "CAM",
    "GTC",
    "S3D",
    "APPLICATIONS",
    "create_app",
    "ParallelRunSummary",
    "RankResult",
    "run_parallel",
    "aggregate_footprint_bytes",
    "rank_object_agreement",
    "VARIANTS",
    "VARIANT_OF",
    "Nek5000MovingBoundary",
    "GTCHighDensity",
    "S3DLargeGrid",
    "CAMHighResolution",
]
