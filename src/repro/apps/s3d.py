"""S3D model: direct numerical simulation of compressible reacting flows
(60x60x60 grid; 512 MB/task — paper Table I).

Published characteristics transplanted into the spec:

* stack: 63.1% of references at read/write ratio 6.04 (Table V);
* read-only *look-up tables containing coefficients for linear
  interpolation* (§VII-B) plus grid-metric invariants;
* ~7.1 MB untouched in the main loop (Fig 7) — pre-computing and
  post-processing buffers;
* "almost all memory objects have their memory reference rates unchanged
  across iterations" (Fig 10) — no jitter anywhere.
"""

from __future__ import annotations

from repro.apps.base import AppInfo, ModelApp, RoutineSpec, StructureSpec

_RO = frozenset({"read_only"})


class S3D(ModelApp):
    """Turbulent combustion DNS model application."""

    info = AppInfo(
        name="s3d",
        input_description="Grid dimensions: 60x60x60",
        description="Turbulence combustion simulation",
        paper_footprint_mb=512.0,
    )

    instructions_per_ref = 150.0
    structure_traffic_scale = 1.11
    stack_write_scale = 0.97

    structures = (
        # --- read-only (interpolation tables & metrics)
        StructureSpec("chemistry_lookup_tables", "global", 0.060, reads=0.0220,
                      writes=0.0, pattern="random", tags=_RO),
        StructureSpec("grid_metric_terms", "global", 0.040, reads=0.0120, writes=0.0,
                      tags=_RO),
        StructureSpec("transport_coefficient_table", "global", 0.025, reads=0.0080,
                      writes=0.0, pattern="random", tags=_RO),
        # --- untouched in the main loop (the paper's 7.1 MB ~= 1.4%)
        StructureSpec("initialization_profiles", "global", 0.008, reads=0.001,
                      writes=0.001, phase="pre"),
        StructureSpec("savefile_staging", "heap", 0.006, reads=0.001, writes=0.001,
                      phase="post"),
        # --- solution state: species + momentum/energy, streamed
        StructureSpec("species_mass_fractions", "global", 0.320, reads=0.0850,
                      writes=0.0330, pattern="sequential"),
        StructureSpec("momentum_energy_fields", "global", 0.160, reads=0.0500,
                      writes=0.0180, pattern="sequential"),
        # Runge-Kutta stage buffers: written once, read once per stage
        StructureSpec("rk_stage_buffers", "heap", 0.200, reads=0.0260, writes=0.0280,
                      pattern="sequential"),
        StructureSpec("reaction_rate_workspace", "heap", 0.100, reads=0.0180,
                      writes=0.0160, pattern="sequential"),
        # derivative stencil halo scratch, per-iteration
        StructureSpec("derivative_scratch", "heap", 0.060, reads=0.0100, writes=0.0080,
                      short_term=True),
    )

    # stack: 0.631 of references at aggregate r/w 6.04
    routines = (
        RoutineSpec("rhsf_navier", local_kb=20, reads=0.1530, writes=0.0260),
        RoutineSpec("derivative_x8", local_kb=12, reads=0.1160, writes=0.0190),
        RoutineSpec("getrates_chem", local_kb=16, reads=0.1080, writes=0.0170),
        RoutineSpec("transport_mixavg", local_kb=10, reads=0.0780, writes=0.0130),
        RoutineSpec("thermchem_eos", local_kb=8, reads=0.0520, writes=0.0085),
        RoutineSpec("rk_integrate", local_kb=6, reads=0.0280, writes=0.0075),
        RoutineSpec("filter_solution", local_kb=6, reads=0.0060, writes=0.0012),
    )
