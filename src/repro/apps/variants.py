"""Alternative input problems for the model applications.

§VII-B: "One interesting feature of some of this read-only data is that
the data may be read-only for specific input problems but read and written
with other input problems. This is due to the random nature of many
scientific simulations. The access patterns to this data can vary for
different inputs." These variants make that claim executable: each derives
from a base application and perturbs the *input-dependent* structures the
paper names, so the same analysis pipeline classifies the same structure
differently under a different input.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.apps.base import AppInfo, ModelApp, StructureSpec
from repro.apps.cam import CAM
from repro.apps.gtc import GTC
from repro.apps.nek5000 import Nek5000
from repro.apps.s3d import S3D
from repro.errors import ConfigurationError


def _patch_structures(
    base: tuple[StructureSpec, ...],
    patches: dict[str, dict],
) -> tuple[StructureSpec, ...]:
    """Return the base spec tuple with named structures field-patched."""
    names = {s.name for s in base}
    missing = set(patches) - names
    if missing:
        raise ConfigurationError(f"variant patches unknown structures: {missing}")
    return tuple(
        dc_replace(s, **patches[s.name]) if s.name in patches else s for s in base
    )


class Nek5000MovingBoundary(Nek5000):
    """Nek5000 with a moving-boundary input.

    The 2D eddy problem's 70 boundary-condition types are read-only; a
    moving-boundary problem *updates* them every step — the paper's
    input-dependence example, applied to the structure it names.
    The footprint also grows (3-D-ish element count).
    """

    info = AppInfo(
        name="nek5000-moving-boundary",
        input_description="Moving-boundary variant of the eddy problem",
        description="Fluid flow simulation (time-dependent boundaries)",
        paper_footprint_mb=1236.0,  # 1.5x the 2D eddy problem
    )

    structures = _patch_structures(
        Nek5000.structures,
        {
            # boundary conditions become read-write under this input
            "boundary_conditions": dict(reads=0.0060, writes=0.0012,
                                        tags=frozenset()),
            # the mesh deforms: geometry-adjacent matrices get writes too
            "velocity_mass_matrix": dict(writes=0.0040),
            "temperature_mass_matrix": dict(writes=0.0030),
        },
    )


class GTCHighDensity(GTC):
    """GTC with more particles per cell (the input knob Table I quotes).

    Particle arrays dominate even more; the stack share drops further and
    the write intensity rises — GTC becomes a still-harder NVRAM target.
    """

    info = AppInfo(
        name="gtc-highdensity",
        input_description="Particles per cell for electron=21 (3x)",
        description="Turbulence plasma simulation (high density)",
        paper_footprint_mb=474.0,
    )

    structures = _patch_structures(
        GTC.structures,
        {
            "zion_particle_array": dict(footprint_fraction=0.58, reads=0.2500,
                                        writes=0.2100),
            "zion0_particle_copy": dict(footprint_fraction=0.13),
            # at high density the field solve iterates more: the electric
            # field is read much more often per deposition write
            "electric_field_grid": dict(reads=0.0900, writes=0.0080),
        },
    )


class S3DLargeGrid(S3D):
    """S3D on a 120^3 grid: 8x the cells, same chemistry tables.

    The read-only lookup tables become a *smaller fraction* of the
    footprint while the solution fields grow — size-based NVRAM
    opportunity shifts from tables to untouched/streamed data.
    """

    info = AppInfo(
        name="s3d-large",
        input_description="Grid dimensions: 120x120x120",
        description="Turbulence combustion simulation (large grid)",
        paper_footprint_mb=4096.0,
    )

    structures = _patch_structures(
        S3D.structures,
        {
            # tables keep their absolute size: 8x footprint -> 1/8 fraction
            "chemistry_lookup_tables": dict(footprint_fraction=0.0075),
            "transport_coefficient_table": dict(footprint_fraction=0.0031),
            "grid_metric_terms": dict(footprint_fraction=0.04),  # scales with grid
            "species_mass_fractions": dict(footprint_fraction=0.37),
            "momentum_energy_fields": dict(footprint_fraction=0.19),
            # larger grid, same RK scheme: each stage buffer is re-read by
            # more stencil evaluations before being overwritten
            "rk_stage_buffers": dict(reads=0.0340),
        },
    )


class CAMHighResolution(CAM):
    """CAM at higher horizontal resolution: more columns per task.

    The hash table and index arrays grow only logarithmically; the state
    fields dominate harder. The ozone forcing data is read every step at
    this resolution (interpolation every iteration instead of every third).
    """

    info = AppInfo(
        name="cam-highres",
        input_description="T85 spectral resolution",
        description="Atmosphere model (high resolution)",
        paper_footprint_mb=1824.0,
    )

    structures = _patch_structures(
        CAM.structures,
        {
            "state_fields_t_u_v_q": dict(footprint_fraction=0.46),
            "ozone_forcing": dict(active_iterations=None),  # touched every step
            "field_name_hash": dict(footprint_fraction=0.005),
            "lookup_index_arrays": dict(footprint_fraction=0.012),
            # higher resolution: tendencies are accumulated over more
            # physics sub-steps before being consumed
            "physics_tendencies": dict(reads=0.0240),
        },
    )


#: Variant registry, keyed like the base registry.
VARIANTS: dict[str, type[ModelApp]] = {
    "nek5000-moving-boundary": Nek5000MovingBoundary,
    "gtc-highdensity": GTCHighDensity,
    "s3d-large": S3DLargeGrid,
    "cam-highres": CAMHighResolution,
}

#: base app name -> variant class
VARIANT_OF: dict[str, type[ModelApp]] = {
    "nek5000": Nek5000MovingBoundary,
    "gtc": GTCHighDensity,
    "s3d": S3DLargeGrid,
    "cam": CAMHighResolution,
}
