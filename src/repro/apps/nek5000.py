"""Nek5000 model: spectral-element unsteady incompressible fluid flow
(2D eddy problem input, 824 MB/task — paper Table I).

Published characteristics transplanted into the spec:

* stack: 75.6% of references, aggregate read/write ratio 6.33 (Table V);
* ~59 MB (7.1%) read-only data: inverse & "element-lagged" mass matrices
  (auxiliary), 70 boundary-condition types & mass matrices
  (computing-dependent), convective characteristics & strain-rate
  invariants (physical invariants) (§VII-B);
* 38.6 MB of r/w > 50 data (velocity/temperature mass matrices);
* ~200 MB (24.3%) untouched in the main loop: diagonal-matrix generation
  (pre-computing) and MPI aggregation buffers (post-processing) (Fig 7);
* "quite diverse reference rates across iterations" (Fig 8) — modelled as
  log-uniform rate jitter on the solver fields.
"""

from __future__ import annotations

from repro.apps.base import AppInfo, ModelApp, RoutineSpec, StructureSpec

_RO = frozenset({"read_only"})


class Nek5000(ModelApp):
    """Spectral-element CFD model application."""

    info = AppInfo(
        name="nek5000",
        input_description="2D eddy problem",
        description="Fluid flow simulation",
        paper_footprint_mb=824.0,
    )

    instructions_per_ref = 140.0
    structure_traffic_scale = 0.77
    stack_write_scale = 0.959

    structures = (
        # --- read-only data (7.1% of footprint): auxiliary
        StructureSpec("inverse_mass_matrices", "global", 0.025, reads=0.0200, writes=0.0,
                      tags=_RO),
        StructureSpec("lagged_mass_matrices", "global", 0.020, reads=0.0150, writes=0.0,
                      tags=_RO),
        # --- read-only: computing-dependent
        StructureSpec("boundary_conditions", "common", 0.010, reads=0.0060, writes=0.0,
                      tags=_RO, members=(("cbc", 0.5), ("bc_params", 0.5))),
        # --- read-only: physical invariants
        StructureSpec("convective_characteristics", "global", 0.008, reads=0.0040,
                      writes=0.0, tags=_RO),
        StructureSpec("strain_rate_invariants", "global", 0.008, reads=0.0030,
                      writes=0.0, tags=_RO),
        # --- r/w > 50 data (4.7% of footprint, the paper's 38.6 MB)
        StructureSpec("velocity_mass_matrix", "global", 0.024, reads=0.0200,
                      writes=0.00030, pattern="sequential"),
        StructureSpec("temperature_mass_matrix", "global", 0.023, reads=0.0140,
                      writes=0.00020),
        # --- untouched in the main loop (24.3% of footprint)
        StructureSpec("diagonal_matrix_workspace", "global", 0.100, reads=0.004,
                      writes=0.004, phase="pre"),
        StructureSpec("mpi_aggregation_buffers", "heap", 0.090, reads=0.004,
                      writes=0.004, phase="post"),
        StructureSpec("method_setup_tables", "global", 0.053, reads=0.002,
                      writes=0.002, phase="pre"),
        # --- solver state (diverse reference rates across iterations)
        StructureSpec("velocity_fields", "global", 0.250, reads=0.0500, writes=0.0160,
                      pattern="sequential", rate_jitter=0.85),
        StructureSpec("pressure_field", "global", 0.080, reads=0.0250, writes=0.0100,
                      pattern="sequential", rate_jitter=0.85),
        StructureSpec("krylov_vectors", "heap", 0.100, reads=0.0240, writes=0.0160,
                      pattern="strided", rate_jitter=0.70),
        StructureSpec("work_arrays", "heap", 0.120, reads=0.0110, writes=0.0140,
                      pattern="sequential", rate_jitter=0.60),
        StructureSpec("gather_scatter_index", "heap", 0.049, reads=0.0070,
                      writes=0.0010, pattern="random"),
        # some data only touched in a few iterations (Fig 7's uneven mass)
        StructureSpec("filter_coefficients", "global", 0.030, reads=0.0040,
                      writes=0.0004, active_iterations=(2, 5, 8)),
        StructureSpec("turbulence_stats", "heap", 0.026, reads=0.0020, writes=0.0020,
                      active_iterations=(5, 10)),
        # transient per-iteration scratch (excluded from Fig 7)
        StructureSpec("element_scratch", "heap", 0.040, reads=0.0080, writes=0.0060,
                      short_term=True),
    )

    # stack: weights sum to 0.756 with aggregate r/w 6.33
    routines = (
        RoutineSpec("ax_helm", local_kb=24, reads=0.1620, writes=0.0260),
        RoutineSpec("local_grad3", local_kb=16, reads=0.1300, writes=0.0210),
        RoutineSpec("gs_op_dssum", local_kb=8, reads=0.0920, writes=0.0170),
        RoutineSpec("cg_iteration", local_kb=12, reads=0.0880, writes=0.0140),
        RoutineSpec("navier_convect", local_kb=20, reads=0.0760, writes=0.0120),
        RoutineSpec("hmholtz_solve", local_kb=12, reads=0.0570, writes=0.0090),
        RoutineSpec("setprec_diag", local_kb=6, reads=0.0330, writes=0.0060,
                    first_iteration_scale=(1.0, 1.6)),
        RoutineSpec("plan4_pressure", local_kb=10, reads=0.0140, writes=0.0020),
    )
