"""GTC model: gyrokinetic toroidal particle-in-cell turbulence code
(poloidal grid 392, 1 tracked particle, 2 toroidal grids, 7 electrons per
cell; 218 MB/task — paper Table I).

Published characteristics transplanted into the spec:

* stack: only 44.3% of references with a low read/write ratio of 3.48
  (Table V) — PIC scatter/gather works mostly on heap particle arrays;
* the write-heavy outlier of the four apps: most objects' r/w ratios sit
  near (or below) 1 (Fig 5) because charge deposition *writes* to grid and
  particle pushes *update* particle state;
* auxiliary *radial interpolation arrays* relating particle positions are
  read-only (§VII-B);
* "almost all of its memory objects are either used throughout the whole
  computation steps or used as short-term heap memory objects" — no Fig 7
  series for GTC; no pre/post-only structures, near-zero jitter.
"""

from __future__ import annotations

from repro.apps.base import AppInfo, ModelApp, RoutineSpec, StructureSpec

_RO = frozenset({"read_only"})


class GTC(ModelApp):
    """Particle-in-cell plasma turbulence model application."""

    info = AppInfo(
        name="gtc",
        input_description=(
            "Poloidal grid points=392, track particles=1, toroidal grids=2, "
            "particles per cell for electron=7"
        ),
        description="Turbulence plasma simulation",
        paper_footprint_mb=218.0,
    )

    instructions_per_ref = 150.0
    structure_traffic_scale = 0.835
    stack_write_scale = 0.97

    structures = (
        # particle phase-space arrays: the dominant, write-heavy traffic
        StructureSpec("zion_particle_array", "heap", 0.45, reads=0.1900, writes=0.1600,
                      pattern="gather"),
        StructureSpec("zion0_particle_copy", "heap", 0.10, reads=0.0300, writes=0.0350,
                      pattern="gather"),
        # grid fields: charge deposition writes + field solve reads
        StructureSpec("charge_density_grid", "global", 0.08, reads=0.0350,
                      writes=0.0400, pattern="random"),
        StructureSpec("electric_field_grid", "global", 0.08, reads=0.0500,
                      writes=0.0250, pattern="random"),
        # read-only auxiliaries
        StructureSpec("radial_interpolation_arrays", "global", 0.05, reads=0.0200,
                      writes=0.0, pattern="random", tags=_RO),
        # diagnostics and per-step scratch: the short-term heap population
        StructureSpec("diagnostic_scratch", "heap", 0.06, reads=0.0120, writes=0.0110,
                      short_term=True),
        StructureSpec("shift_buffers", "heap", 0.05, reads=0.0080, writes=0.0080,
                      short_term=True),
        # remaining long-term grid/geometry state, evenly touched
        StructureSpec("poloidal_geometry", "common", 0.08, reads=0.0150, writes=0.0100,
                      members=(("qtinv", 0.3), ("deltat", 0.3), ("igrid", 0.4))),
        StructureSpec("moment_arrays", "global", 0.05, reads=0.0080, writes=0.0090),
    )

    # stack: 0.443 of references at aggregate r/w 3.48
    routines = (
        RoutineSpec("chargei_deposit", local_kb=10, reads=0.1280, writes=0.0420),
        RoutineSpec("pushi_particles", local_kb=12, reads=0.1180, writes=0.0330),
        RoutineSpec("poisson_solver", local_kb=8, reads=0.0560, writes=0.0150),
        RoutineSpec("smooth_field", local_kb=6, reads=0.0260, writes=0.0065),
        RoutineSpec("shifti_exchange", local_kb=6, reads=0.0130, writes=0.0045),
    )
