"""Experiment harness: every table/figure regenerates and matches the
paper's shape at test fidelity."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentContext, run_all, run_experiment
from repro.experiments.runner import EXPERIMENTS, experiments_markdown


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(refs_per_iteration=10_000, scale=1.0 / 256.0)


def test_unknown_experiment(ctx):
    with pytest.raises(ConfigurationError):
        run_experiment("fig99", ctx)


def test_aliases_resolve(ctx):
    assert run_experiment("fig4", ctx).exp_id == "fig3-6"
    assert run_experiment("table2", ctx).exp_id == "config"


def test_context_caches_runs(ctx):
    r1 = ctx.run("gtc")
    r2 = ctx.run("gtc")
    assert r1 is r2


def test_table1(ctx):
    res = run_experiment("table1", ctx)
    assert len(res.rows) == 4
    for row in res.rows:
        assert 0.5 < row["measured_footprint_mb"] / (
            row["paper_footprint_mb"] * ctx.scale
        ) < 2.0


def test_config_tables(ctx):
    res = run_experiment("config", ctx)
    assert "Table II" in res.text
    assert "no-write-allocate" in res.text
    assert "100ns" in res.text


def test_table5_shape(ctx):
    res = run_experiment("table5", ctx)
    by_app = {r["application"]: r for r in res.rows}
    assert by_app["cam"]["rw_ratio"] > by_app["nek5000"]["rw_ratio"] > by_app["gtc"]["rw_ratio"]
    assert by_app["nek5000"]["reference_percentage"] > 0.70
    assert by_app["cam"]["reference_percentage"] > 0.70
    assert by_app["gtc"]["reference_percentage"] < 0.55


def test_table6_shape(ctx):
    res = run_experiment("table6", ctx)
    for row in res.rows:
        assert row["PCRAM"] <= row["STTRAM"] + 1e-9
        for tech in ("PCRAM", "STTRAM", "MRAM"):
            assert 0.62 < row[tech] < 0.78, (row["application"], tech)
            # >= 22% saving at worst even at tiny test fidelity
            assert 1 - row[tech] >= 0.22


def test_fig2_shape(ctx):
    res = run_experiment("fig2", ctx)
    m = {r["routine"]: r for r in res.rows}
    assert "interp_coefficients" in m


def test_fig3_6_runs(ctx):
    res = run_experiment("fig3-6", ctx)
    assert len(res.rows) > 20
    assert any(r["read_only"] for r in res.rows)


def test_fig7_shape(ctx):
    res = run_experiment("fig7", ctx)
    unused = {r["application"]: r.get("unused_fraction") for r in res.rows
              if "unused_fraction" in r}
    assert unused["nek5000"] > unused["cam"] > unused["s3d"]


def test_fig8_11_shape(ctx):
    res = run_experiment("fig8-11", ctx)
    for row in res.rows:
        assert row["min_stable_fraction"] > 0.55, row["application"]


def test_fig12_shape(ctx):
    res = run_experiment("fig12", ctx)
    for row in res.rows:
        assert abs(row["loss_MRAM"]) < 0.02
        assert row["loss_STTRAM"] < 0.05
        assert 0.0 < row["loss_PCRAM"] < 0.35
        assert row["loss_STTRAM"] < row["loss_PCRAM"]


def test_hybrid_headline(ctx):
    res = run_experiment("hybrid", ctx)
    by_app = {r["application"]: r for r in res.rows}
    # "31% and 27% of the memory working sets are suitable for NVRAM"
    assert by_app["nek5000"]["nvram_fraction_PCRAM"] == pytest.approx(0.31, abs=0.08)
    assert by_app["cam"]["nvram_fraction_PCRAM"] == pytest.approx(0.27, abs=0.08)
    # category-2 admits more than category-1 everywhere
    for row in by_app.values():
        assert row["nvram_fraction_STTRAM"] >= row["nvram_fraction_PCRAM"]


def test_locality_experiment(ctx):
    res = run_experiment("locality", ctx)
    by_app = {r["application"]: r for r in res.rows}
    assert by_app["gtc"]["spatial"] == min(r["spatial"] for r in res.rows)


def test_dramcache_experiment(ctx):
    res = run_experiment("dramcache", ctx)
    for r in res.rows:
        assert r["hier_latency_ns"] > r["horiz_latency_ns"]


def test_wear_experiment(ctx):
    res = run_experiment("wear", ctx)
    for r in res.rows:
        assert r["lifetime_years_leveled"] > r["lifetime_years_raw"]


def test_checkpoint_experiment(ctx):
    res = run_experiment("checkpoint", ctx)
    for r in res.rows:
        assert r["nvram_efficiency"] > r["disk_efficiency"]


def test_fig12x_experiment(ctx):
    res = run_experiment("fig12x", ctx)
    for r in res.rows:
        # the differentiated model never exceeds the symmetric bound
        for tech in ("MRAM", "STTRAM", "PCRAM"):
            assert r[f"diff_{tech}"] <= r[f"sym_{tech}"] + 1e-9
        # STTRAM's real loss is negligible (DRAM-speed reads)
        assert r["diff_STTRAM"] < 0.01


def test_capacity_experiment(ctx):
    res = run_experiment("capacity", ctx)
    savings = [r["saving"] for r in res.rows]
    # the saving at the largest capacity strictly beats the smallest
    assert savings[-1] > savings[0]
    assert all(0.15 < s < 0.6 for s in savings)


def test_prefetch_experiment(ctx):
    res = run_experiment("prefetch", ctx)
    by_app = {r["application"]: r for r in res.rows}
    assert by_app["gtc"]["coverage"] < 0.2
    assert by_app["s3d"]["coverage"] > by_app["gtc"]["coverage"]


def test_run_all_and_markdown(ctx):
    results = run_all(ctx)
    assert len(results) == len(EXPERIMENTS)
    md = experiments_markdown(results, ctx)
    assert "# EXPERIMENTS" in md
    for res in results:
        assert f"## {res.exp_id}:" in md
