"""Read/write-differentiated performance model and multi-task runs."""

import pytest

from repro.apps import CAM, GTC, rank_object_agreement, run_parallel
from repro.apps.parallel import aggregate_footprint_bytes
from repro.errors import ConfigurationError
from repro.nvram.technology import DRAM_DDR3, MRAM, PCRAM, STTRAM
from repro.perfsim.core import WorkloadCounts
from repro.perfsim.rwmodel import ReadWriteCoreModel, RWWorkloadCounts


def make_rw_counts(reads=4000, writes=1500, mlp=8.0):
    base = WorkloadCounts(
        instructions=2_000_000,
        memory_refs=400_000,
        l1_misses=max(40_000, 2 * (reads + writes)),
        llc_misses=reads + writes,
        mlp=mlp,
    )
    return RWWorkloadCounts(base=base, llc_read_misses=reads, llc_writebacks=writes)


class TestReadWriteModel:
    MODEL = ReadWriteCoreModel()

    def test_differentiated_beats_symmetric_for_pcram(self):
        """§V: assuming write latency == read latency is a performance
        lower bound — the real (posted-write) slowdown is smaller."""
        w = make_rw_counts()
        sym, diff = self.MODEL.bound_gap(w, PCRAM, DRAM_DDR3)
        assert diff < sym
        assert diff >= 1.0

    def test_sttram_gap_reflects_dram_like_reads(self):
        """STTRAM reads are DRAM-speed: the differentiated slowdown is
        almost nil even though the symmetric model charged 20 ns."""
        w = make_rw_counts()
        sym, diff = self.MODEL.bound_gap(w, STTRAM, DRAM_DDR3)
        assert diff <= sym
        assert diff < 1.02

    def test_mram_symmetric_equals_differentiated(self):
        """MRAM is symmetric (12/12): both models must agree exactly."""
        w = make_rw_counts()
        sym, diff = self.MODEL.bound_gap(w, MRAM, DRAM_DDR3)
        assert diff == pytest.approx(sym)

    def test_write_flood_stalls_buffer(self):
        """Enough writebacks against few drain banks eventually stalls."""
        model = ReadWriteCoreModel(drain_banks=1, write_buffer_entries=4)
        calm = make_rw_counts(reads=100, writes=100)
        flood = make_rw_counts(reads=100, writes=400_000)
        slow_calm = model.slowdown(calm, PCRAM, DRAM_DDR3)
        slow_flood = model.slowdown(flood, PCRAM, DRAM_DDR3)
        assert slow_flood > slow_calm

    def test_dram_baseline_is_one(self):
        w = make_rw_counts()
        assert self.MODEL.slowdown(w, DRAM_DDR3, DRAM_DDR3) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ReadWriteCoreModel(write_buffer_entries=0)
        with pytest.raises(ConfigurationError):
            RWWorkloadCounts(
                base=make_rw_counts().base, llc_read_misses=-1, llc_writebacks=0
            )


class TestParallelRuns:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_parallel(GTC, n_ranks=4, refs_per_iteration=4000, n_iterations=5)

    def test_every_rank_analyzed(self, summary):
        assert summary.n_ranks == 4
        assert len(summary.ranks) == 4
        assert all(r.result.total_refs > 0 for r in summary.ranks)

    def test_per_task_consistency(self, summary):
        """The paper's implicit assumption: one task is representative."""
        assert summary.per_task_consistent(rel_tolerance=0.05)

    def test_ranks_differ_in_detail(self, summary):
        """Different seeds: random-pattern traffic differs across ranks."""
        hit0 = summary.ranks[0].result.total_reads
        hit1 = summary.ranks[1].result.total_reads
        # aggregate read counts are deterministic by weight, so equal; the
        # per-object reference *addresses* differ — check via footprints of
        # variance (classification porting still holds below)
        assert hit0 == hit1  # counts are spec-driven

    def test_placement_ports_across_ranks(self, summary):
        assert rank_object_agreement(summary) > 0.9

    def test_aggregate_footprint(self, summary):
        total = aggregate_footprint_bytes(summary)
        per_task = summary.ranks[0].result.footprint_bytes
        assert total == pytest.approx(4 * per_task, rel=0.02)

    def test_invalid_ranks(self):
        with pytest.raises(ConfigurationError):
            run_parallel(CAM, n_ranks=0)
