"""NVRAM technology parameters and endurance model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nvram.endurance import EnduranceModel
from repro.nvram.technology import (
    DRAM_DDR3,
    MRAM,
    PCRAM,
    RRAM,
    STTRAM,
    TECHNOLOGIES,
    MemoryTechnology,
    NVRAMCategory,
    technology,
)


class TestTechnology:
    def test_table4_latencies(self):
        """Table IV verbatim."""
        assert (DRAM_DDR3.read_latency_ns, DRAM_DDR3.write_latency_ns) == (10, 10)
        assert (PCRAM.read_latency_ns, PCRAM.write_latency_ns) == (20, 100)
        assert (STTRAM.read_latency_ns, STTRAM.write_latency_ns) == (10, 20)
        assert (MRAM.read_latency_ns, MRAM.write_latency_ns) == (12, 12)
        assert PCRAM.perf_sim_latency_ns == 100
        assert STTRAM.perf_sim_latency_ns == 20
        assert MRAM.perf_sim_latency_ns == 12

    def test_paper_categories(self):
        assert PCRAM.category is NVRAMCategory.LONG_READ_WRITE
        assert STTRAM.category is NVRAMCategory.LONG_WRITE_ONLY
        assert RRAM.category is NVRAMCategory.NEAR_DRAM
        assert DRAM_DDR3.category is NVRAMCategory.DRAM_LIKE_VOLATILE

    def test_paper_currents(self):
        """§IV: 40 mA read / 150 mA write, shared by PCRAM/STTRAM/MRAM."""
        for tech in (PCRAM, STTRAM, MRAM):
            assert tech.read_current_ma == 40.0
            assert tech.write_current_ma == 150.0

    def test_nvram_has_no_refresh_or_leakage(self):
        for tech in (PCRAM, STTRAM, MRAM, RRAM):
            assert tech.nonvolatile
            assert tech.refresh_power_mw_per_rank == 0.0
            assert tech.standby_leakage_mw_per_rank == 0.0
        assert DRAM_DDR3.refresh_power_mw_per_rank > 0

    def test_asymmetry(self):
        assert PCRAM.latency_asymmetry == pytest.approx(5.0)
        assert STTRAM.latency_asymmetry == pytest.approx(2.0)
        assert DRAM_DDR3.latency_asymmetry == pytest.approx(1.0)

    def test_power_conversion(self):
        assert PCRAM.write_power_mw == pytest.approx(150 * 1.5)

    def test_lookup_case_insensitive(self):
        assert technology("pcram") is PCRAM
        assert technology("PCRAM") is PCRAM
        with pytest.raises(ConfigurationError):
            technology("fooRAM")

    def test_registry_complete(self):
        assert set(TECHNOLOGIES) >= {"DDR3", "PCRAM", "STTRAM", "MRAM", "Flash", "RRAM"}

    def test_with_overrides(self):
        t = PCRAM.with_overrides(write_latency_ns=150.0)
        assert t.write_latency_ns == 150.0
        assert t.name == "PCRAM"
        assert PCRAM.write_latency_ns == 100.0  # original untouched

    def test_invalid_nvram_write_faster_than_read(self):
        with pytest.raises(ConfigurationError):
            MemoryTechnology(
                name="bad", category=NVRAMCategory.LONG_WRITE_ONLY,
                read_latency_ns=20, write_latency_ns=10, perf_sim_latency_ns=10,
                nonvolatile=True, read_current_ma=1, write_current_ma=1,
                voltage_v=1, refresh_power_mw_per_rank=0,
                standby_leakage_mw_per_rank=0, write_endurance=1e8,
            )

    def test_endurance_ordering(self):
        """§II limitation 3: PCRAM << DRAM."""
        assert PCRAM.write_endurance < 1e10
        assert DRAM_DDR3.write_endurance == 1e16
        assert 1e8 <= PCRAM.write_endurance <= 10 ** 9.7


class TestEndurance:
    def test_record_and_wear(self):
        m = EnduranceModel(region_bytes=16 * 4096, page_bytes=4096)
        m.record_writes(np.array([0, 1, 4096, 4096 * 15]))
        assert m.state.n_pages == 16
        assert m.state.writes_per_page[0] == 2
        assert m.state.max_wear == 2
        assert m.state.wear_imbalance > 1.0

    def test_out_of_region_ignored(self):
        m = EnduranceModel(region_bytes=4096)
        m.record_writes(np.array([999999]))
        assert m.state.writes_per_page.sum() == 0

    def test_region_base(self):
        m = EnduranceModel(region_bytes=2 * 4096)
        m.record_writes(np.array([0x10000 + 4096]), region_base=0x10000)
        assert m.state.writes_per_page[1] == 1

    def test_uniform_leveling(self):
        m = EnduranceModel(region_bytes=4 * 4096)
        m.record_uniform(10)
        assert m.state.writes_per_page.sum() == 10
        assert m.state.wear_imbalance <= 1.5

    def test_lifetime_projection(self):
        m = EnduranceModel(region_bytes=4096)
        m.record_writes(np.zeros(1000, dtype=np.int64))  # 1000 writes to page 0
        # 1000 writes/second against PCRAM endurance
        years = m.lifetime_years(PCRAM, observed_window_seconds=1.0)
        expected = PCRAM.write_endurance / 1000 / (365.25 * 24 * 3600)
        assert years == pytest.approx(expected)

    def test_wear_leveling_extends_lifetime(self):
        m = EnduranceModel(region_bytes=64 * 4096)
        m.record_writes(np.zeros(5000, dtype=np.int64))  # all on one page
        raw = m.lifetime_years(PCRAM, 1.0, wear_leveled=False)
        leveled = m.lifetime_years(PCRAM, 1.0, wear_leveled=True)
        assert leveled == pytest.approx(raw * 64)

    def test_no_writes_infinite_lifetime(self):
        m = EnduranceModel(region_bytes=4096)
        assert m.lifetime_years(PCRAM, 1.0) == float("inf")

    def test_acceptable(self):
        m = EnduranceModel(region_bytes=4096)
        m.record_uniform(1)  # ~nothing
        assert m.acceptable(PCRAM, observed_window_seconds=1.0, required_years=5)

    def test_dram_outlives_pcram(self):
        m = EnduranceModel(region_bytes=4096)
        m.record_writes(np.zeros(100, dtype=np.int64))
        assert m.lifetime_years(DRAM_DDR3, 1.0) > m.lifetime_years(PCRAM, 1.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel(region_bytes=0)
        m = EnduranceModel(region_bytes=4096)
        with pytest.raises(ConfigurationError):
            m.lifetime_years(PCRAM, 0.0)
        with pytest.raises(ConfigurationError):
            m.record_uniform(-1)
