"""Set-sampled cache simulation: accuracy against the exact hierarchy."""

import numpy as np
import pytest

from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.sampled import SetSampledHierarchy
from repro.errors import ConfigurationError
from repro.trace.record import AccessType, RefBatch
from repro.util.rng import make_rng


def random_batch(n=60_000, span=1 << 26, write_fraction=0.3, seed=0):
    rng = make_rng(seed)
    addrs = (rng.integers(0, span, n, dtype=np.uint64) // 64) * 64
    return RefBatch(
        addr=addrs,
        is_write=rng.random(n) < write_fraction,
        size=np.full(n, 64, np.uint8),
        oid=np.full(n, -1, np.int32),
    )


@pytest.fixture(scope="module")
def exact_and_sampled():
    batch = random_batch()
    exact = CacheHierarchy()
    exact.process_batch(batch)
    sampled = SetSampledHierarchy(sample_every=8)
    sampled.process_batch(batch)
    return exact.stats(), sampled.stats()


def test_sampling_fraction_near_1_over_k(exact_and_sampled):
    _, s = exact_and_sampled
    assert s.sampling_fraction == pytest.approx(1 / 8, rel=0.1)


def test_miss_rates_close_to_exact(exact_and_sampled):
    e, s = exact_and_sampled
    assert s.est_l1_miss_rate == pytest.approx(e.levels["L1D"].miss_rate, abs=0.03)
    assert s.est_llc_miss_rate == pytest.approx(e.levels["L2"].miss_rate, abs=0.05)


def test_memory_access_estimate_close(exact_and_sampled):
    e, s = exact_and_sampled
    assert s.est_memory_accesses == pytest.approx(e.memory_accesses, rel=0.10)


def test_streaming_workload_accuracy():
    """Set sampling is exact per sampled set: a uniform stream estimates
    perfectly."""
    addrs = (np.arange(100_000, dtype=np.uint64) * 64)
    batch = RefBatch.from_access(addrs, AccessType.READ)
    exact = CacheHierarchy()
    exact.process_batch(batch)
    sampled = SetSampledHierarchy(sample_every=16)
    sampled.process_batch(batch)
    e, s = exact.stats(), sampled.stats()
    assert s.est_l1_miss_rate == pytest.approx(e.levels["L1D"].miss_rate, abs=0.01)


def test_no_object_is_lost():
    """Unlike §III-D time sampling, set sampling still touches every
    object: any object bigger than K lines lands in a sampled set."""
    # an object of 64 consecutive lines (4 KiB): sampled at k=8
    addrs = (np.arange(64, dtype=np.uint64) * 64)
    sampled = SetSampledHierarchy(sample_every=8)
    sampled.process_batch(RefBatch.from_access(addrs, AccessType.READ))
    assert sampled.sampled_refs > 0


def test_invalid_params():
    with pytest.raises(ConfigurationError):
        SetSampledHierarchy(sample_every=0)
    with pytest.raises(ConfigurationError):
        SetSampledHierarchy(sample_every=1 << 20)


def test_empty_batch():
    sampled = SetSampledHierarchy()
    sampled.process_batch(RefBatch.empty())
    assert sampled.stats().total_refs == 0
