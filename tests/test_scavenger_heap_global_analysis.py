"""Heap and global analyzers: attribution against ground truth."""

import numpy as np

from repro.instrument.api import FanoutProbe
from repro.instrument.runtime import InstrumentedRuntime
from repro.scavenger.global_analysis import GlobalAnalyzer
from repro.scavenger.heap_analysis import HeapAnalyzer


def build():
    fan = FanoutProbe([])
    rt = InstrumentedRuntime(fan, buffer_capacity=128)
    heap = HeapAnalyzer(rt.space.layout.heap_segment)
    glob = GlobalAnalyzer(rt.space.layout.global_segment)
    fan.add(heap)
    fan.add(glob)
    return rt, heap, glob


class TestHeapAnalyzer:
    def test_attribution_matches_producer(self):
        rt, heap, _ = build()
        a = rt.malloc(100, "a:1")
        b = rt.malloc(200, "b:1")
        rt.begin_iteration(1)
        rt.load(a, np.arange(100))
        rt.store(b, np.arange(200))
        rt.finish()
        assert heap.stats.reads[a.obj.oid, 1] == 100
        assert heap.stats.writes[b.obj.oid, 1] == 200
        assert heap.unattributed == 0
        assert heap.heap_refs == 300

    def test_dead_object_aliasing(self):
        """After free, a new allocation at the same base attributes to the
        NEW object — the dead-flag scenario of §III-B."""
        rt, heap, _ = build()
        a = rt.malloc(128, "a:1")
        rt.begin_iteration(1)
        rt.load(a, np.arange(16))
        rt.free(a)
        b = rt.malloc(128, "b:1")  # reuses the address
        assert b.base == a.base
        rt.load(b, np.arange(16))
        rt.finish()
        assert heap.stats.reads[a.obj.oid, 1] == 16
        assert heap.stats.reads[b.obj.oid, 1] == 16

    def test_resurrected_object_accumulates(self):
        rt, heap, _ = build()
        rt.begin_iteration(1)
        a = rt.malloc(64, "loop:1")
        rt.load(a, np.arange(8))
        rt.free(a)
        rt.begin_iteration(2)
        b = rt.malloc(64, "loop:1")  # same signature -> same oid
        rt.load(b, np.arange(8))
        rt.free(b)
        rt.finish()
        assert a.obj.oid == b.obj.oid
        assert heap.stats.reads[a.obj.oid].sum() == 16

    def test_short_term_detection(self):
        rt, heap, _ = build()
        long_term = rt.malloc(64, "pre:1")  # born in iteration 0
        rt.begin_iteration(1)
        tmp = rt.malloc(64, "tmp:1")
        rt.load(tmp, np.arange(8))
        rt.load(long_term, np.arange(8))
        rt.free(tmp)
        rt.finish()
        assert heap.is_short_term(tmp.obj.oid)
        assert not heap.is_short_term(long_term.obj.oid)
        assert long_term.obj.oid in heap.long_term_oids()
        assert tmp.obj.oid not in heap.long_term_oids()

    def test_freed_longterm_not_short_term(self):
        """An object born pre-loop and freed mid-loop is still long-term."""
        rt, heap, _ = build()
        obj = rt.malloc(64, "pre:1")
        rt.begin_iteration(1)
        rt.load(obj, np.arange(4))
        rt.free(obj)
        rt.finish()
        assert not heap.is_short_term(obj.obj.oid)

    def test_ignores_non_heap_refs(self):
        rt, heap, _ = build()
        g = rt.global_array("g", 100)
        rt.begin_iteration(1)
        rt.load(g, np.arange(100))
        rt.finish()
        assert heap.heap_refs == 0
        assert heap.total_refs == 100


class TestGlobalAnalyzer:
    def test_attribution(self):
        rt, _, glob = build()
        g1 = rt.global_array("a", 100)
        g2 = rt.global_array("b", 100)
        rt.begin_iteration(1)
        rt.load(g1, np.arange(100))
        rt.store(g2, np.arange(50))
        rt.finish()
        assert glob.stats.reads[g1.obj.oid, 1] == 100
        assert glob.stats.writes[g2.obj.oid, 1] == 50
        assert glob.unattributed == 0

    def test_common_block_attributed_as_one(self):
        rt, _, glob = build()
        cb = rt.common_block("/fields/", [("t", 50), ("u", 50)])
        rt.begin_iteration(1)
        rt.load(cb, np.arange(100))  # spans both members
        rt.finish()
        assert glob.stats.reads[cb.obj.oid, 1] == 100
        assert len(glob.objects) == 1

    def test_ignores_heap_refs(self):
        rt, _, glob = build()
        h = rt.malloc(100, "x:1")
        rt.begin_iteration(1)
        rt.store(h, np.arange(100))
        rt.finish()
        assert glob.global_refs == 0
