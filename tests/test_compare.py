"""Result comparison API."""

import pytest

from repro.scavenger import NVScavenger
from repro.scavenger.compare import (
    ComparisonReport,
    ObjectDelta,
    compare_results,
    normalize_object_name,
)
from repro.workloads.generator import ObjectSpec, SyntheticWorkload, WorkloadSpec


def make_result(write_table=False, extra=False):
    objects = [
        ObjectSpec("table", "global", 1000, reads_per_iter=200,
                   writes_per_iter=20 if write_table else 0),
        ObjectSpec("state", "global", 2000, reads_per_iter=100, writes_per_iter=50),
        ObjectSpec("scratch", "heap", 300, reads_per_iter=30, writes_per_iter=30),
    ]
    if extra:
        objects.append(
            ObjectSpec("new_buffer", "global", 400, reads_per_iter=10,
                       writes_per_iter=10)
        )
    spec = WorkloadSpec(objects=tuple(objects), n_iterations=4)
    return NVScavenger().analyze(SyntheticWorkload(spec), n_main_iterations=4)


class TestNormalize:
    def test_heap_names_stripped(self):
        assert normalize_object_name("heap:cam:workspace") == "heap:workspace"
        assert normalize_object_name("heap:synthetic:x") == "heap:x"

    def test_globals_untouched(self):
        assert normalize_object_name("mass_matrix") == "mass_matrix"


class TestCompare:
    def test_identical_runs_fully_stable(self):
        a = make_result()
        b = make_result()
        rep = compare_results(a, b)
        assert rep.stable_fraction == 1.0
        assert not rep.changed
        assert not rep.only_in_a and not rep.only_in_b

    def test_classification_flip_detected(self):
        rep = compare_results(make_result(write_table=False),
                              make_result(write_table=True))
        changed = {d.name for d in rep.changed}
        assert "table" in changed
        delta = next(d for d in rep.shared if d.name == "table")
        assert delta.class_a == "read_only"
        assert delta.class_b != "read_only"
        assert delta.classification_changed
        assert rep.stable_fraction < 1.0

    def test_new_objects_reported(self):
        rep = compare_results(make_result(), make_result(extra=True))
        assert "new_buffer" in rep.only_in_b
        assert not rep.only_in_a

    def test_rw_shift(self):
        d = ObjectDelta("x", 2.0, 4.0, 0, 0, 1, 1, "a", "a", "p", "p")
        assert d.rw_ratio_shift == pytest.approx(2.0)
        ro = ObjectDelta("x", float("inf"), 5.0, 0, 0, 1, 1, "a", "a", "p", "p")
        assert ro.rw_ratio_shift == float("inf")
        same = ObjectDelta("x", float("inf"), float("inf"), 0, 0, 1, 1, "a", "a", "p", "p")
        assert same.rw_ratio_shift == 1.0

    def test_empty_report_defaults(self):
        rep = ComparisonReport()
        assert rep.stable_fraction == 1.0
        assert rep.changed == []
