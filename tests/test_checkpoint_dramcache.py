"""Checkpointing model and the hierarchical DRAM-cache comparison."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hybrid.checkpoint import (
    NVRAM_LOCAL,
    PFS_DISK,
    CheckpointTarget,
    compare_targets,
    nvram_capacity_for_checkpointing,
    plan_checkpoints,
)
from repro.hybrid.dramcache import DRAMCacheModel, HorizontalModel
from repro.hybrid.pagemap import MemoryPool, PageMap
from repro.nvram.technology import PCRAM, STTRAM
from repro.trace.record import RefBatch
from repro.util.rng import make_rng
from repro.util.units import GiB, MiB


class TestCheckpoint:
    FOOTPRINT = int(0.5 * GiB)
    MTBF = 6 * 3600.0  # 6 hours

    def test_nvram_checkpoints_much_faster(self):
        d = PFS_DISK.checkpoint_seconds(self.FOOTPRINT)
        n = NVRAM_LOCAL.checkpoint_seconds(self.FOOTPRINT)
        assert n < d / 50

    def test_nvram_efficiency_dominates(self):
        plans = compare_targets(self.FOOTPRINT, self.MTBF)
        assert plans["NVRAM"].efficiency > plans["PFS-disk"].efficiency
        assert plans["NVRAM"].efficiency > 0.95

    def test_optimal_interval_follows_youngs_formula(self):
        import math

        p1 = plan_checkpoints(self.FOOTPRINT, self.MTBF, PFS_DISK)
        assert p1.optimal_interval_s == pytest.approx(
            math.sqrt(2.0 * p1.checkpoint_s * self.MTBF)
        )
        p2 = plan_checkpoints(self.FOOTPRINT * 4, self.MTBF, PFS_DISK)
        assert p2.optimal_interval_s == pytest.approx(
            math.sqrt(2.0 * p2.checkpoint_s * self.MTBF)
        )
        assert p2.optimal_interval_s > p1.optimal_interval_s

    def test_more_frequent_checkpoints_on_fast_device(self):
        plans = compare_targets(self.FOOTPRINT, self.MTBF)
        assert plans["NVRAM"].checkpoints_per_hour > plans["PFS-disk"].checkpoints_per_hour

    def test_efficiency_degrades_with_flaky_machine(self):
        good = plan_checkpoints(self.FOOTPRINT, 24 * 3600.0, PFS_DISK)
        bad = plan_checkpoints(self.FOOTPRINT, 600.0, PFS_DISK)
        assert bad.efficiency < good.efficiency

    def test_capacity_helper(self):
        assert nvram_capacity_for_checkpointing(100, n_buffers=2) == 200
        with pytest.raises(ConfigurationError):
            nvram_capacity_for_checkpointing(100, n_buffers=0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            plan_checkpoints(0, self.MTBF, PFS_DISK)
        with pytest.raises(ConfigurationError):
            plan_checkpoints(100, 0, PFS_DISK)
        with pytest.raises(ConfigurationError):
            CheckpointTarget("bad", bandwidth_gbs=0, latency_s=0)


def make_trace(pattern: str, n: int = 20_000, span_lines: int = 1 << 16, seed: int = 0):
    rng = make_rng(seed)
    if pattern == "random":
        lines = rng.integers(0, span_lines, n, dtype=np.uint64)
    elif pattern == "hot":
        lines = rng.integers(0, span_lines // 64, n, dtype=np.uint64)
    else:
        lines = np.arange(n, dtype=np.uint64) % span_lines
    addrs = lines * 64
    is_w = rng.random(n) < 0.3
    return [RefBatch(addr=addrs, is_write=is_w, size=np.full(n, 64, np.uint8),
                     oid=np.full(n, -1, np.int32))]


class TestDRAMCacheVsHorizontal:
    def test_low_locality_defeats_dram_cache(self):
        """§II: 'For workloads with poor locality, the DRAM cache actually
        lowers performance and increases energy consumption.'"""
        trace = make_trace("random", span_lines=1 << 18)
        # DRAM cache much smaller than the (random) working set
        cache = DRAMCacheModel(PCRAM, dram_capacity_bytes=int(0.25 * MiB))
        hier = cache.run(trace)
        assert hier.hit_rate < 0.2
        # horizontal comparator with the same DRAM budget: hot pages (none
        # here, so classification puts everything in NVRAM-eligible or
        # DRAM) — use all-DRAM-resident for the footprint that fits,
        # approximated by mapping the first 0.25 MiB of pages to DRAM.
        pm = PageMap()
        pm.assign_range(0, (1 << 18) * 64, MemoryPool.NVRAM)
        pm.assign_range(0, int(0.25 * MiB), MemoryPool.DRAM)
        horiz = HorizontalModel(PCRAM, pm, dram_capacity_bytes=int(0.25 * MiB)).run(trace)
        # hierarchical pays probe+fill on ~every access: slower than
        # flat NVRAM access
        assert hier.avg_latency_ns > horiz.avg_latency_ns

    def test_high_locality_favors_dram_cache(self):
        """With a hot working set that fits, the cache wins latency."""
        trace = make_trace("hot", span_lines=1 << 16)
        cache = DRAMCacheModel(PCRAM, dram_capacity_bytes=2 * MiB)
        hier = cache.run(trace)
        assert hier.hit_rate > 0.8
        pm = PageMap()
        pm.assign_range(0, (1 << 16) * 64, MemoryPool.NVRAM)
        horiz = HorizontalModel(PCRAM, pm).run(trace)
        assert hier.avg_latency_ns < horiz.avg_latency_ns

    def test_traffic_accounting(self):
        trace = make_trace("seq", n=5000, span_lines=1 << 14)
        cache = DRAMCacheModel(STTRAM, dram_capacity_bytes=1 * MiB)
        res = cache.run(trace)
        assert res.accesses == 5000
        assert res.dram_hits + res.nvram_fills == 5000
        assert res.nvram_writebacks <= res.nvram_fills

    def test_horizontal_latency_composition(self):
        trace = make_trace("seq", n=1000, span_lines=1 << 12)
        pm = PageMap()
        pm.assign_range(0, (1 << 12) * 64, MemoryPool.NVRAM)
        res = HorizontalModel(PCRAM, pm).run(trace)
        assert res.nvram_accesses == 1000
        # reads at 20ns; writes are posted through the controller's write
        # buffer (DRAM-class visible latency): average lands in between
        assert 10.0 <= res.avg_latency_ns <= 20.0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            DRAMCacheModel(PCRAM, dram_capacity_bytes=0)
