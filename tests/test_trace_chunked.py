"""Trace format v3: chunked columnar container, lazy mmap reader."""

import os
import zlib

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.chunked import (
    CODEC_RAW,
    CODEC_ZLIB,
    INDEX_FILE,
    ChunkedTraceReader,
    ChunkedTraceWriter,
    is_chunked,
    migrate_trace,
    tv3_path,
)
from repro.trace.fsio import _batch_crc, content_digest_from_crcs
from repro.trace.io import NpzTraceWriter, TraceReader, TraceWriter
from repro.trace.record import RefBatch


def make_batch(n, iteration=0, seed=None):
    """A batch with every column varying; seeded ⇒ incompressible addrs."""
    if seed is not None:
        rng = np.random.default_rng(seed)
        return RefBatch(
            addr=rng.integers(0, 2**63, size=n, dtype=np.uint64),
            is_write=rng.integers(0, 2, size=n).astype(bool),
            size=rng.integers(0, 256, size=n).astype(np.uint8),
            oid=rng.integers(-1, 2**31 - 1, size=n, dtype=np.int32),
            iteration=iteration,
        )
    return RefBatch(
        addr=np.arange(n, dtype=np.uint64) * 8 + iteration,
        is_write=(np.arange(n) % 3 == 0),
        size=np.full(n, 8, np.uint8),
        oid=np.arange(n, dtype=np.int32) % 7 - 1,
        iteration=iteration,
    )


def assert_batches_equal(a, b):
    assert a.iteration == b.iteration
    np.testing.assert_array_equal(a.addr, b.addr)
    np.testing.assert_array_equal(a.is_write, b.is_write)
    np.testing.assert_array_equal(a.size, b.size)
    np.testing.assert_array_equal(a.oid, b.oid)


@pytest.fixture
def batches():
    return [make_batch(100, i) for i in range(4)]


@pytest.fixture
def container(tmp_path, batches):
    path = str(tmp_path / "trace")
    with ChunkedTraceWriter(path) as w:
        for b in batches:
            w.append(b)
    return w.path


# ----------------------------------------------------------------------
class TestPaths:
    def test_tv3_path_appends_suffix_once(self):
        assert tv3_path("t") == "t.tv3"
        assert tv3_path("t.tv3") == "t.tv3"

    def test_is_chunked_accepts_stem_and_dir(self, container):
        stem = container[: -len(".tv3")]
        assert is_chunked(container) == container
        assert is_chunked(stem) == container
        assert is_chunked(container + "-nope") is None

    def test_factory_dispatch(self, tmp_path, batches):
        # suffix-less → v3 container; .npz → legacy monolith
        v3 = TraceWriter(str(tmp_path / "a"))
        assert isinstance(v3, ChunkedTraceWriter)
        v3.append(batches[0])
        v3.close()
        npz = TraceWriter(str(tmp_path / "b.npz"))
        assert isinstance(npz, NpzTraceWriter)
        npz.append(batches[0])
        npz.close()
        assert TraceReader(str(tmp_path / "a")).version == 3
        assert TraceReader(str(tmp_path / "b.npz")).version == 2


class TestRoundtrip:
    def test_batches_come_back_bit_identical(self, container, batches):
        with ChunkedTraceReader(container) as r:
            assert r.n_batches == len(batches)
            assert r.total_refs == sum(len(b) for b in batches)
            for orig, got in zip(batches, r):
                assert_batches_equal(orig, got)

    def test_empty_trace_roundtrips(self, tmp_path):
        with ChunkedTraceWriter(str(tmp_path / "e")) as w:
            w.append(RefBatch.empty())  # empty batches are skipped
        with ChunkedTraceReader(str(tmp_path / "e")) as r:
            assert r.n_batches == 0 and r.total_refs == 0
            assert list(r) == []

    def test_overwrite_replaces_existing_container(self, container):
        with ChunkedTraceWriter(container) as w:
            w.append(make_batch(10, 5))
        with ChunkedTraceReader(container) as r:
            assert r.n_batches == 1
            assert r.records[0].iteration == 5

    def test_append_after_close_and_discard_poisons(self, tmp_path):
        w = ChunkedTraceWriter(str(tmp_path / "t"))
        w.append(make_batch(4))
        w.close()
        with pytest.raises(TraceError, match="closed"):
            w.append(make_batch(4))
        w2 = ChunkedTraceWriter(str(tmp_path / "u"))
        w2.append(make_batch(4))
        w2.discard()
        assert not os.path.exists(tv3_path(str(tmp_path / "u")))
        assert not os.path.exists(tv3_path(str(tmp_path / "u")) + ".tmp")
        with pytest.raises(TraceError, match="closed"):
            w2.append(make_batch(4))
        w2.close()  # inert, resurrects nothing
        assert not os.path.exists(tv3_path(str(tmp_path / "u")))


class TestCodec:
    def test_auto_compresses_regular_payloads(self, container):
        with ChunkedTraceReader(container) as r:
            assert all(rec.codec == CODEC_ZLIB for rec in r.records)

    def test_auto_stores_incompressible_payloads_raw(self, tmp_path):
        path = str(tmp_path / "rnd")
        with ChunkedTraceWriter(path) as w:
            w.append(make_batch(2000, seed=42))
        with ChunkedTraceReader(path) as r:
            assert r.records[0].codec == CODEC_RAW

    def test_raw_decode_is_zero_copy_and_read_only(self, tmp_path):
        batch = make_batch(500, seed=7)
        path = str(tmp_path / "raw")
        with ChunkedTraceWriter(path, codec="raw") as w:
            w.append(batch)
        r = ChunkedTraceReader(path)
        got = r.read_batch(0)
        # views straight into the mmap: no private buffer, not writable
        assert got.addr.base is not None
        assert not got.addr.flags.writeable
        with pytest.raises(ValueError):
            got.addr[0] = 1
        assert_batches_equal(batch, got)

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="codec"):
            ChunkedTraceWriter(str(tmp_path / "x"), codec="lz4")


class TestLaziness:
    def test_open_touches_no_chunk(self, container):
        with ChunkedTraceReader(container) as r:
            assert (r.n_mapped, r.n_verified, r.n_decoded) == (0, 0, 0)

    def test_read_batch_advances_state_machine_once(self, container):
        with ChunkedTraceReader(container) as r:
            r.read_batch(1)
            assert (r.n_mapped, r.n_verified, r.n_decoded) == (1, 1, 1)
            r.read_batch(1)  # map + stored-CRC work is cached
            assert (r.n_mapped, r.n_verified, r.n_decoded) == (1, 1, 2)

    def test_verify_stored_sweeps_without_decoding(self, container):
        with ChunkedTraceReader(container) as r:
            assert r.verify_stored() == r.n_chunks
            assert r.n_decoded == 0
            assert r.verify_stored() == 0  # nothing newly verified

    def test_payload_crcs_need_no_decode(self, container, batches):
        with ChunkedTraceReader(container) as r:
            crcs = r.payload_crcs()
            assert r.n_decoded == 0
        assert crcs == [
            _batch_crc(b.addr, b.is_write, b.size, b.oid, b.iteration)
            for b in batches
        ]


class TestCorruption:
    def _flip(self, path, offset):
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0x10]))

    def test_chunk_bitflip_detected_with_batch_index(self, container):
        self._flip(os.path.join(container, "chunk-000002.bin"), 5)
        with ChunkedTraceReader(container) as r:
            r.read_batch(0)  # intact chunks still decode
            with pytest.raises(TraceError, match="checksum") as exc:
                r.read_batch(2)
            assert exc.value.batch_index == 2

    def test_index_header_bitflip_detected_at_open(self, container):
        self._flip(os.path.join(container, INDEX_FILE), 20)
        with pytest.raises(TraceError, match="header"):
            ChunkedTraceReader(container)

    def test_index_record_bitflip_detected_at_open(self, container):
        with ChunkedTraceReader(container):
            pass
        self._flip(os.path.join(container, INDEX_FILE), 64 + 10)
        with pytest.raises(TraceError, match="index"):
            ChunkedTraceReader(container)

    def test_truncated_chunk_reports_truncation(self, container):
        chunk = os.path.join(container, "chunk-000001.bin")
        size = os.path.getsize(chunk)
        with open(chunk, "r+b") as fh:
            fh.truncate(size - 1)
        with ChunkedTraceReader(container) as r:
            with pytest.raises(TraceError, match="truncated") as exc:
                r.read_batch(1)
            assert exc.value.batch_index == 1

    def test_missing_container_is_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="cannot open"):
            ChunkedTraceReader(str(tmp_path / "absent"))


class TestMigration:
    def test_v2_to_v3_is_bit_identical_batch_by_batch(self, tmp_path, batches):
        src = str(tmp_path / "old.npz")
        with TraceWriter(src) as w:
            for b in batches:
                w.append(b)
        dst = str(tmp_path / "new")
        n, total = migrate_trace(src, dst)
        assert n == len(batches)
        assert total == sum(len(b) for b in batches)
        with TraceReader(src) as old, TraceReader(dst) as new:
            assert new.version == 3
            for a, b in zip(old, new):
                assert_batches_equal(a, b)

    def test_migration_preserves_content_digest(self, tmp_path, batches):
        src = str(tmp_path / "old.npz")
        with TraceWriter(src) as w:
            for b in batches:
                w.append(b)
        migrate_trace(src, str(tmp_path / "new"))
        with TraceReader(src) as old, TraceReader(str(tmp_path / "new")) as new:
            assert old.payload_crcs() == new.payload_crcs()
            events_crc = zlib.crc32(b"[]")
            assert (content_digest_from_crcs(events_crc, old.payload_crcs())
                    == content_digest_from_crcs(events_crc, new.payload_crcs()))

    def test_v3_to_v3_recompression(self, tmp_path, batches):
        src = str(tmp_path / "a")
        with ChunkedTraceWriter(src, codec="raw") as w:
            for b in batches:
                w.append(b)
        n, _total = migrate_trace(src, str(tmp_path / "b"), codec="zlib")
        assert n == len(batches)
        with ChunkedTraceReader(str(tmp_path / "b")) as r:
            assert all(rec.codec == CODEC_ZLIB for rec in r.records)
            for orig, got in zip(batches, r):
                assert_batches_equal(orig, got)

    def test_failed_migration_leaves_no_container(self, tmp_path):
        src = str(tmp_path / "bad.npz")
        with open(src, "wb") as fh:
            fh.write(b"not an archive")
        with pytest.raises(TraceError):
            migrate_trace(src, str(tmp_path / "out"))
        assert not os.path.exists(tv3_path(str(tmp_path / "out")))
        assert not os.path.exists(tv3_path(str(tmp_path / "out")) + ".tmp")
