"""Streaming statistics, histograms, weighted CDFs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import Histogram, StreamingStats, weighted_cdf


class TestStreamingStats:
    def test_scalar_updates_match_numpy(self):
        xs = [1.0, 2.0, 3.5, -1.0, 10.0]
        s = StreamingStats()
        for x in xs:
            s.update(x)
        assert s.count == 5
        assert s.mean == pytest.approx(np.mean(xs))
        assert s.variance == pytest.approx(np.var(xs))
        assert s.min == -1.0
        assert s.max == 10.0

    def test_batch_update_matches_scalar(self):
        xs = np.linspace(-3, 7, 101)
        a = StreamingStats()
        a.update_batch(xs)
        b = StreamingStats()
        for x in xs:
            b.update(float(x))
        assert a.mean == pytest.approx(b.mean)
        assert a.variance == pytest.approx(b.variance)

    def test_empty_batch_noop(self):
        s = StreamingStats()
        s.update_batch(np.empty(0))
        assert s.count == 0
        assert np.isnan(s.variance)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concat(self, xs, ys):
        merged = StreamingStats()
        merged.update_batch(np.array(xs))
        other = StreamingStats()
        other.update_batch(np.array(ys))
        merged.merge(other)
        direct = StreamingStats()
        direct.update_batch(np.array(xs + ys))
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(direct.variance, rel=1e-6, abs=1e-4)

    def test_merge_into_empty(self):
        a = StreamingStats()
        b = StreamingStats()
        b.update(5.0)
        a.merge(b)
        assert a.count == 1
        assert a.mean == 5.0


class TestHistogram:
    def test_basic_binning(self):
        h = Histogram(0.0, 10.0, 10)
        h.add(np.array([0.5, 1.5, 1.7, 9.9]))
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1
        assert h.total == 4

    def test_under_overflow(self):
        h = Histogram(0.0, 1.0, 4)
        h.add(np.array([-0.1, 1.0, 2.0, 0.5]))
        assert h.underflow == 1
        assert h.overflow == 2  # 1.0 lands exactly on hi -> overflow
        assert h.counts.sum() == 1

    def test_weights(self):
        h = Histogram(0.0, 1.0, 2)
        h.add(np.array([0.25, 0.75]), weights=np.array([3, 7]))
        assert h.counts.tolist() == [3, 7]

    def test_bin_edges(self):
        h = Histogram(0.0, 1.0, 4)
        assert np.allclose(h.bin_edges(), [0, 0.25, 0.5, 0.75, 1.0])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)


class TestWeightedCdf:
    def test_fig7_semantics(self):
        # objects touched in {0, 0, 3, 10} iterations with sizes 10,20,5,65
        xs, cum = weighted_cdf(np.array([0, 0, 3, 10]), np.array([10, 20, 5, 65]))
        assert xs.tolist() == [0, 3, 10]
        assert cum.tolist() == [30, 35, 100]

    def test_single(self):
        xs, cum = weighted_cdf(np.array([5]), np.array([2.5]))
        assert xs.tolist() == [5]
        assert cum.tolist() == [2.5]

    def test_empty(self):
        xs, cum = weighted_cdf(np.empty(0), np.empty(0))
        assert xs.size == 0 and cum.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_cdf(np.array([1, 2]), np.array([1.0]))

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(1, 100)), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_monotone_and_total(self, pairs):
        vals = np.array([p[0] for p in pairs], dtype=float)
        wts = np.array([p[1] for p in pairs], dtype=float)
        xs, cum = weighted_cdf(vals, wts)
        assert np.all(np.diff(xs) > 0)
        assert np.all(np.diff(cum) > 0)
        assert cum[-1] == pytest.approx(wts.sum())
