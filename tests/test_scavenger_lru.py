"""LRU object cache and the cached-index composition."""

import pytest

from repro.scavenger.buckets import MISS, LinearScanIndex
from repro.scavenger.lru import CachedIndex, LRUObjectCache


def test_put_get_hit():
    c = LRUObjectCache(capacity=4, block_bytes=64)
    c.put(0x1000, 7)
    assert c.get(0x1000) == 7
    assert c.get(0x1010) == 7  # same 64B block
    assert c.hits == 2 and c.misses == 0


def test_miss():
    c = LRUObjectCache(capacity=4)
    assert c.get(0x1000) == MISS
    assert c.misses == 1


def test_eviction_order_is_lru():
    c = LRUObjectCache(capacity=2, block_bytes=64)
    c.put(0, 0)
    c.put(64, 1)
    c.get(0)  # touch block 0 -> block 1 is now LRU
    c.put(128, 2)  # evicts block 1
    assert c.get(0) == 0
    assert c.get(64) == MISS
    assert c.get(128) == 2


def test_capacity_bound():
    c = LRUObjectCache(capacity=3, block_bytes=64)
    for i in range(10):
        c.put(i * 64, i)
    assert len(c) == 3


def test_invalidate_object():
    c = LRUObjectCache(capacity=8, block_bytes=64)
    c.put(0, 1)
    c.put(64, 1)
    c.put(128, 2)
    c.invalidate_object(1)
    assert c.get(0) == MISS
    assert c.get(128) == 2


def test_hit_rate():
    c = LRUObjectCache(capacity=2)
    c.put(0, 0)
    c.get(0)
    c.get(4096)
    assert c.hit_rate == pytest.approx(0.5)


@pytest.mark.parametrize("cap,block", [(0, 64), (4, 0), (4, 48)])
def test_invalid_params(cap, block):
    with pytest.raises(ValueError):
        LRUObjectCache(capacity=cap, block_bytes=block)


class TestCachedIndex:
    def test_consistent_with_underlying(self):
        idx = LinearScanIndex()
        idx.insert(0, 0x1000, 0x1100)
        idx.insert(1, 0x2000, 0x2100)
        cached = CachedIndex(LinearScanIndex(), LRUObjectCache(capacity=4))
        cached.insert(0, 0x1000, 0x1100)
        cached.insert(1, 0x2000, 0x2100)
        for addr in (0x1000, 0x1050, 0x2000, 0x3000, 0x1050):
            assert cached.lookup(addr) == idx.lookup(addr)

    def test_cache_warms_up(self):
        cached = CachedIndex(LinearScanIndex(), LRUObjectCache(capacity=4))
        cached.insert(0, 0x1000, 0x1100)
        cached.lookup(0x1000)
        cached.lookup(0x1008)  # same block: served from cache
        assert cached.cache.hits == 1

    def test_remove_invalidates(self):
        cached = CachedIndex(LinearScanIndex(), LRUObjectCache(capacity=4))
        cached.insert(0, 0x1000, 0x1100)
        cached.lookup(0x1000)
        cached.remove(0)
        assert cached.lookup(0x1000) == MISS
