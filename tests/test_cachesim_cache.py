"""Single cache level: LRU, write policies, eviction correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.cache import AccessResult, SetAssociativeCache
from repro.cachesim.config import CacheLevelConfig
from repro.errors import ConfigurationError


def make_cache(size=1024, ways=2, line=64, write_allocate=True, name="L"):
    return SetAssociativeCache(
        CacheLevelConfig(name=name, size_bytes=size, associativity=ways,
                         line_bytes=line, write_allocate=write_allocate)
    )


def test_cold_miss_then_hit():
    c = make_cache()
    res, victim = c.access(5, False)
    assert res is AccessResult.MISS_ALLOCATED
    assert victim == -1
    res, _ = c.access(5, False)
    assert res is AccessResult.HIT
    assert c.stats.read_misses == 1 and c.stats.read_hits == 1


def test_lru_eviction_order():
    c = make_cache(size=2 * 64, ways=2)  # 1 set, 2 ways
    c.access(0, False)
    c.access(1, False)
    c.access(0, False)  # touch 0: 1 becomes LRU
    res, victim = c.access(2, False)  # evicts 1 (clean -> no writeback)
    assert res is AccessResult.MISS_ALLOCATED
    assert victim == -1
    assert not c.contains(1)
    assert c.contains(0) and c.contains(2)


def test_dirty_eviction_produces_writeback():
    c = make_cache(size=2 * 64, ways=2)
    c.access(0, True)  # dirty
    c.access(1, False)
    _, victim = c.access(2, False)  # evicts 0
    assert victim == 0
    assert c.stats.writebacks == 1


def test_write_hit_dirties_line():
    c = make_cache(size=2 * 64, ways=2)
    c.access(0, False)  # clean fill
    c.access(0, True)  # dirty it
    c.access(1, False)
    _, victim = c.access(2, False)
    assert victim == 0


def test_no_write_allocate_bypasses_store_miss():
    c = make_cache(write_allocate=False)
    res, victim = c.access(7, True)
    assert res is AccessResult.MISS_BYPASSED
    assert victim == -1
    assert not c.contains(7)
    # a read still allocates
    res, _ = c.access(7, False)
    assert res is AccessResult.MISS_ALLOCATED


def test_set_mapping_no_cross_set_interference():
    c = make_cache(size=4 * 64, ways=1)  # 4 sets, direct-mapped
    c.access(0, False)
    c.access(1, False)
    c.access(2, False)
    c.access(3, False)
    assert all(c.contains(i) for i in range(4))
    # line 4 maps to set 0: evicts line 0 only
    c.access(4, False)
    assert not c.contains(0)
    assert c.contains(1)


def test_victim_line_number_reconstruction():
    c = make_cache(size=4 * 64, ways=1)
    c.access(8 + 2, True)  # set 2, tag 2
    _, victim = c.access(16 + 2, False)  # set 2, tag 4
    assert victim == 10


def test_flush_returns_dirty_lines():
    c = make_cache(size=4 * 64, ways=2)
    c.access(0, True)
    c.access(1, False)
    c.access(2, True)
    dirty = sorted(c.flush())
    assert dirty == [0, 2]
    assert c.resident_lines() == 0


def test_stats_accounting():
    c = make_cache()
    c.access(0, False)
    c.access(0, True)
    c.access(1, True)
    s = c.stats
    assert s.accesses == 3
    assert s.read_misses == 1 and s.write_hits == 1 and s.write_misses == 1
    assert s.miss_rate == pytest.approx(2 / 3)


def test_invalid_configs():
    with pytest.raises(ConfigurationError):
        CacheLevelConfig("x", size_bytes=1000, associativity=2, line_bytes=64)
    with pytest.raises(ConfigurationError):
        CacheLevelConfig("x", size_bytes=1024, associativity=2, line_bytes=60)
    with pytest.raises(ConfigurationError):
        CacheLevelConfig("x", size_bytes=0, associativity=2)


def test_config_derived_quantities():
    cfg = CacheLevelConfig("x", size_bytes=1 << 20, associativity=16, line_bytes=64)
    assert cfg.n_sets == 1024
    assert cfg.n_lines == 16384


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_property_capacity_and_residency(accesses):
    """Resident lines never exceed capacity; a just-accessed (allocating)
    line is always resident."""
    c = make_cache(size=8 * 64, ways=2)
    for line, is_write in accesses:
        res, _ = c.access(line, is_write)
        assert c.resident_lines() <= 8
        if res is not AccessResult.MISS_BYPASSED:
            assert c.contains(line)


@given(st.lists(st.integers(0, 15), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_property_fully_assoc_lru_stack(accesses):
    """In a fully-associative cache, a hit occurs iff the reuse distance
    (distinct lines since last access) is < capacity — the classic LRU
    stack property."""
    capacity = 4
    c = make_cache(size=capacity * 64, ways=capacity)
    history: list[int] = []
    for line in accesses:
        if line in history:
            distinct_since = len(set(history[history.index(line) + 1:]))
            expect_hit = distinct_since < capacity
        else:
            expect_hit = False
        res, _ = c.access(line, False)
        assert (res is AccessResult.HIT) == expect_hit
        if line in history:
            history.remove(line)
        history.append(line)
