"""Timing-coupled power simulation: idle accounting and power-down."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.nvram.technology import DRAM_DDR3, PCRAM
from repro.powersim.timing import (
    TimedMemorySystem,
    arrivals_from_rate,
    simulate_timed_power,
)
from repro.trace.record import AccessType, RefBatch


def batch(n, stride=64):
    return RefBatch.from_access(
        (np.arange(n, dtype=np.uint64) * stride), AccessType.READ
    )


def test_back_to_back_equals_full_speed_counts():
    b = batch(500)
    sys = TimedMemorySystem(DRAM_DDR3)
    sys.process_timed(b, np.zeros(500))
    rep = sys.report()
    assert sys.controller.stats.accesses == 500
    assert rep.idle_ns == 0.0
    assert rep.utilization == pytest.approx(1.0)


def test_sparse_arrivals_accumulate_idle():
    b = batch(100)
    arrivals = np.arange(100, dtype=np.float64) * 1000.0  # 1 us apart
    sys = TimedMemorySystem(DRAM_DDR3)
    sys.process_timed(b, arrivals)
    rep = sys.report()
    assert rep.idle_ns > 90_000
    assert rep.utilization < 0.05


def test_powerdown_saves_background_when_idle():
    b = batch(100)
    sparse = np.arange(100, dtype=np.float64) * 5000.0
    lazy = simulate_timed_power([b], [sparse], DRAM_DDR3, powerdown_fraction=0.3)
    busy = simulate_timed_power([b], [np.zeros(100)], DRAM_DDR3, powerdown_fraction=0.3)
    assert lazy.powerdown_savings_mw > 0
    assert busy.powerdown_savings_mw == 0
    assert lazy.average_power_mw < busy.breakdown.total_mw


def test_nvram_benefits_less_from_powerdown():
    """NVRAM has no reducible leakage beyond the shared peripherals."""
    b = batch(100)
    sparse = np.arange(100, dtype=np.float64) * 5000.0
    dram = simulate_timed_power([b], [sparse], DRAM_DDR3)
    pcram = simulate_timed_power([b], [sparse], PCRAM)
    # same idle fraction, but DRAM has more background to shed
    assert dram.powerdown_savings_mw > pcram.powerdown_savings_mw


def test_low_intensity_narrows_the_nvram_gap_absolutely():
    """At low utilization the DRAM-vs-NVRAM *absolute* gap shrinks with
    power-down, but NVRAM still wins (zero leakage beats reduced leakage)."""
    b = batch(200)
    sparse = arrivals_from_rate([b], accesses_per_us=0.2)
    dram = simulate_timed_power([b], sparse, DRAM_DDR3)
    pcram = simulate_timed_power([b], sparse, PCRAM)
    assert pcram.average_power_mw < dram.average_power_mw


def test_arrival_validation():
    b = batch(10)
    sys = TimedMemorySystem(DRAM_DDR3)
    with pytest.raises(SimulationError):
        sys.process_timed(b, np.zeros(5))
    with pytest.raises(SimulationError):
        sys.process_timed(b, np.linspace(10, 0, 10))


def test_trace_batch_count_mismatch():
    with pytest.raises(SimulationError):
        simulate_timed_power([batch(5)], [], DRAM_DDR3)


def test_arrivals_from_rate():
    arr = arrivals_from_rate([batch(4), batch(2)], accesses_per_us=2.0)
    assert len(arr) == 2
    assert arr[0].tolist() == [0.0, 500.0, 1000.0, 1500.0]
    assert arr[1][0] == 2000.0
    with pytest.raises(ConfigurationError):
        arrivals_from_rate([batch(1)], 0)


def test_bad_powerdown_fraction():
    with pytest.raises(ConfigurationError):
        TimedMemorySystem(DRAM_DDR3, powerdown_fraction=1.5)


def test_empty_batch():
    sys = TimedMemorySystem(DRAM_DDR3)
    sys.process_timed(RefBatch.empty(), np.empty(0))
    assert sys.controller.stats.accesses == 0
