"""Global segment: symbols, views, FORTRAN common-block merging."""

import pytest

from repro.errors import SegmentError
from repro.memory.globals import GlobalSegment
from repro.memory.layout import Segment, SegmentKind


def make_globals(size=1 << 20, base=0x4000):
    return GlobalSegment(Segment(SegmentKind.GLOBAL, base, base + size))


def test_define_lays_out_disjoint():
    g = make_globals()
    a = g.define("a", 100)
    b = g.define("b", 50)
    assert a.limit <= b.base
    assert g.bytes_used >= 150


def test_define_bad_size():
    g = make_globals()
    with pytest.raises(SegmentError):
        g.define("zero", 0)


def test_exhaustion():
    g = make_globals(size=128)
    g.define("a", 64)
    with pytest.raises(SegmentError):
        g.define("b", 128)


def test_view_must_be_inside_segment():
    g = make_globals()
    with pytest.raises(SegmentError):
        g.define_view("v", 0, 10)


def test_merged_objects_disjoint_symbols_stay_separate():
    g = make_globals()
    g.define("x", 100)
    g.define("y", 100)
    merged = g.merged_objects()
    assert [m[0] for m in merged] == ["x", "y"]


def test_common_block_members_merge_into_one():
    g = make_globals()
    g.define("before", 64)
    g.define_common_block("/fields/", [("t", 80), ("u", 40), ("v", 40)])
    merged = g.merged_objects()
    assert len(merged) == 2
    name, base, size = merged[-1]
    # union name combines block and member views
    assert "/fields/" in name
    assert "/fields/%t" in name
    assert size == 160


def test_repartitioned_common_block_different_views():
    """The same block viewed as (a,b) by one unit and (c) by another."""
    g = make_globals()
    block = g.define("/blk/", 100)
    g.define_view("unit1%a", block.base, 60)
    g.define_view("unit1%b", block.base + 60, 40)
    g.define_view("unit2%c", block.base, 100)
    merged = g.merged_objects()
    assert len(merged) == 1
    name, base, size = merged[0]
    assert base == block.base
    assert size == 100
    for part in ("/blk/", "unit1%a", "unit1%b", "unit2%c"):
        assert part in name


def test_partial_overlap_union_range():
    g = make_globals()
    a = g.define("a", 100)
    # a view starting inside `a` and extending past it (overlapping the gap)
    g.define_view("tail", a.base + 50, 100)
    merged = g.merged_objects()
    assert merged[0][1] == a.base
    assert merged[0][2] == 150


def test_adjacent_symbols_do_not_merge():
    g = make_globals()
    a = g.define("a", 16)
    g.define_view("b_adjacent", a.limit, 16)
    assert len(g.merged_objects()) == 2


def test_merged_objects_empty():
    assert make_globals().merged_objects() == []
