"""Heap allocator: first-fit, coalescing, address reuse, realloc."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import AllocationError, InvalidFreeError
from repro.memory.heap import HeapAllocator
from repro.memory.layout import Segment, SegmentKind


def make_heap(size=1 << 20, base=0x1000):
    return HeapAllocator(Segment(SegmentKind.HEAP, base, base + size))


def test_malloc_returns_aligned_disjoint_blocks():
    h = make_heap()
    a = h.malloc(100)
    b = h.malloc(200)
    assert a % 16 == 0 and b % 16 == 0
    assert b >= a + 112  # 100 aligned up to 112
    assert h.bytes_allocated == 300


def test_malloc_bad_size():
    h = make_heap()
    with pytest.raises(AllocationError):
        h.malloc(0)
    with pytest.raises(AllocationError):
        h.malloc(-5)


def test_free_and_address_reuse():
    h = make_heap()
    a = h.malloc(128)
    h.free(a)
    b = h.malloc(64)
    # first-fit: the freed block is reused from its start
    assert b == a


def test_free_unknown_pointer():
    h = make_heap()
    with pytest.raises(InvalidFreeError):
        h.free(0xDEAD)


def test_double_free():
    h = make_heap()
    a = h.malloc(10)
    h.free(a)
    with pytest.raises(InvalidFreeError):
        h.free(a)


def test_exhaustion():
    h = make_heap(size=1024)
    h.malloc(512)
    with pytest.raises(AllocationError):
        h.malloc(1024)


def test_coalescing_allows_large_realloc():
    h = make_heap(size=4096)
    blocks = [h.malloc(512) for _ in range(8)]
    for b in blocks:
        h.free(b)
    # without coalescing this would fail
    big = h.malloc(4096)
    assert big == blocks[0]


def test_realloc_is_free_then_malloc():
    h = make_heap()
    a = h.malloc(100)
    b = h.realloc(a, 50)
    # paper semantics: realloc = free + malloc; first-fit reuses the hole
    assert b == a
    assert h.size_of(b) == 50
    with pytest.raises(InvalidFreeError):
        h.size_of(a + 16)


def test_peak_tracking():
    h = make_heap()
    a = h.malloc(1000)
    b = h.malloc(2000)
    h.free(a)
    h.free(b)
    assert h.bytes_allocated == 0
    assert h.peak_bytes == 3000


def test_counters():
    h = make_heap()
    a = h.malloc(8)
    h.free(a)
    h.malloc(8)
    assert h.alloc_count == 2
    assert h.free_count == 1


@given(st.lists(st.integers(1, 2000), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_alloc_all_then_free_all(sizes):
    h = make_heap(size=1 << 22)
    ptrs = [h.malloc(s) for s in sizes]
    assert len(set(ptrs)) == len(ptrs)
    h.check_invariants()
    for p in ptrs:
        h.free(p)
    h.check_invariants()
    assert h.bytes_allocated == 0
    # the whole segment coalesces back into one block: a full-size malloc works
    big = h.malloc((1 << 22) - 16)
    assert big is not None


class HeapMachine(RuleBasedStateMachine):
    """Stateful fuzz: interleaved malloc/free preserves invariants."""

    def __init__(self):
        super().__init__()
        self.heap = make_heap(size=1 << 20)
        self.live: list[int] = []

    @rule(size=st.integers(1, 5000))
    def alloc(self, size):
        try:
            p = self.heap.malloc(size)
        except AllocationError:
            return
        assert p not in self.live
        self.live.append(p)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free_one(self, data):
        idx = data.draw(st.integers(0, len(self.live) - 1))
        self.heap.free(self.live.pop(idx))

    @invariant()
    def invariants_hold(self):
        self.heap.check_invariants()


TestHeapMachine = HeapMachine.TestCase
TestHeapMachine.settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
