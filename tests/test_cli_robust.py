"""CLI hardening: argument validation and the trace --verify path."""

import numpy as np
import pytest

from repro.cli import main
from repro.trace.io import write_trace
from repro.trace.record import AccessType, RefBatch


class TestArgumentValidation:
    @pytest.mark.parametrize("command", ["analyze", "power", "perf"])
    @pytest.mark.parametrize("flag,value", [
        ("--refs", "-5"),
        ("--refs", "0"),
        ("--iterations", "0"),
        ("--iterations", "-2"),
        ("--scale", "0"),
        ("--scale", "-0.5"),
    ])
    def test_nonpositive_knobs_exit_2(self, capsys, command, flag, value):
        rc = main([command, "gtc", flag, value])
        assert rc == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err
        assert flag in err and "positive" in err

    def test_valid_args_still_run(self, capsys):
        rc = main(["analyze", "gtc", "--refs", "2000", "--scale", "0.004",
                   "--iterations", "3"])
        assert rc == 0
        assert "references" in capsys.readouterr().out


class TestExperimentsJobsFlag:
    def test_negative_jobs_exit_2(self, capsys):
        rc = main(["experiments", "all", "--jobs", "-1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err and "--jobs" in err
        assert "usage:" in err

    def test_garbage_jobs_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["experiments", "all", "--jobs", "lots"])
        assert exc.value.code == 2
        assert "expected an integer or 'adaptive'" in capsys.readouterr().err

    def test_jobs_adaptive_is_accepted(self):
        from repro.experiments.__main__ import _jobs_arg

        assert _jobs_arg("adaptive") == "adaptive"
        assert _jobs_arg(" Adaptive ") == "adaptive"
        assert _jobs_arg("3") == 3

    def test_unknown_transport_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["experiments", "all", "--transport", "carrier-pigeon"])
        assert exc.value.code == 2
        assert "--transport" in capsys.readouterr().err

    def test_jobs_zero_resolves_to_cpu_count(self):
        import os

        from repro.sched import resolve_jobs

        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_single_experiment_ignores_jobs(self, capsys):
        rc = main(["experiments", "table5", "--jobs", "2",
                   "--refs", "2000", "--scale", "0.004", "--iterations", "3"])
        assert rc == 0
        assert "table5" in capsys.readouterr().out.lower()


class TestServeFlag:
    """``serve`` follows the CLI's exit-code contract: 2 on bad args
    (before any socket is opened), 130/143 on signals (covered end to
    end in test_service_http.py)."""

    @pytest.mark.parametrize("argv,fragment", [
        (["serve", "--cache-dir", "c", "--port", "70000"], "--port"),
        (["serve", "--cache-dir", "c", "--port", "-1"], "--port"),
        (["serve", "--cache-dir", "c", "--max-inflight", "0"],
         "--max-inflight"),
        (["serve", "--cache-dir", "c", "--max-queue", "-1"], "--max-queue"),
        (["serve", "--cache-dir", "c", "--grace", "-2"], "--grace"),
        (["serve", "--cache-dir", "c", "--default-deadline", "0"],
         "--default-deadline"),
        (["serve", "--cache-dir", "c", "--max-deadline", "-5"],
         "--max-deadline"),
        (["serve", "--cache-dir", "c", "--breaker-threshold", "0"],
         "--breaker-threshold"),
        (["serve", "--cache-dir", "c", "--chaos", "no-such-scenario"],
         "chaos scenario"),
        (["serve", "--cache-dir", "c", "--cache-budget", "lots"],
         "byte size"),
    ])
    def test_invalid_args_exit_2(self, capsys, argv, fragment):
        rc = main(argv)
        assert rc == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err
        assert fragment in err

    def test_missing_cache_dir_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve"])
        assert exc.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_garbage_port_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--cache-dir", "c", "--port", "http"])
        assert exc.value.code == 2
        assert "invalid int value" in capsys.readouterr().err


class TestWorkFlag:
    """``nvscavenger work`` keeps the exit-code contract: 2 on anything
    that prevents the worker from even joining a run (bad args, missing
    cache, unknown run id), before any lease is touched."""

    def test_missing_required_args_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["work"])
        assert exc.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_nonexistent_cache_dir_exit_2(self, capsys, tmp_path):
        rc = main(["work", "--cache-dir", str(tmp_path / "nope"),
                   "--run-id", "r1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err and "--cache-dir" in err

    def test_unknown_run_id_exit_2(self, capsys, tmp_path):
        rc = main(["work", "--cache-dir", str(tmp_path), "--run-id", "ghost"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err and "ghost" in err

    def test_once_and_max_tasks_are_mutually_exclusive(self, capsys,
                                                       tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["work", "--cache-dir", str(tmp_path), "--run-id", "r1",
                  "--once", "--max-tasks", "2"])
        assert exc.value.code == 2
        assert "not allowed" in capsys.readouterr().err

    @pytest.mark.parametrize("flag,value,fragment", [
        ("--poll", "0", "--poll"),
        ("--poll", "-1", "--poll"),
        ("--heartbeat", "0", "--heartbeat"),
        ("--max-tasks", "0", "--max-tasks"),
        ("--chaos", "no-such-scenario", "chaos scenario"),
    ])
    def test_invalid_knobs_exit_2(self, capsys, tmp_path, flag, value,
                                  fragment):
        rc = main(["work", "--cache-dir", str(tmp_path), "--run-id", "r1",
                   flag, value])
        assert rc == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err
        assert fragment in err


class TestTraceVerify:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.npz")
        batches = [
            RefBatch.from_access(np.arange(16, dtype=np.uint64) * 8,
                                 AccessType.READ, iteration=i)
            for i in range(2)
        ]
        write_trace(path, batches)
        return path

    def test_inspect(self, capsys, trace_path):
        assert main(["trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "v2" in out and "2 batches" in out

    def test_verify_ok(self, capsys, trace_path):
        assert main(["trace", trace_path, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "all checksums verified" in out
        assert "32 references" in out

    def test_verify_detects_corruption(self, capsys, trace_path):
        data = dict(np.load(trace_path))
        arr = data["b1_addr"].copy()
        arr.view(np.uint8)[5] ^= 0x01
        data["b1_addr"] = arr
        np.savez_compressed(trace_path, **data)
        assert main(["trace", trace_path, "--verify"]) == 1
        err = capsys.readouterr().err
        assert "corrupt trace (batch 1)" in err

    def test_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.npz"), "--verify"]) == 1
        assert "corrupt trace" in capsys.readouterr().err

    def test_show_subcommand_spelled_out(self, capsys, trace_path):
        # the legacy "trace <path>" spelling above is a shim; the real
        # subcommand must work too
        assert main(["trace", "show", trace_path, "--verify"]) == 0
        assert "all checksums verified" in capsys.readouterr().out


class TestTraceMigrate:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.npz")
        batches = [
            RefBatch.from_access(np.arange(16, dtype=np.uint64) * 8,
                                 AccessType.READ, iteration=i)
            for i in range(2)
        ]
        write_trace(path, batches)
        return path

    def test_migrate_then_show(self, capsys, trace_path, tmp_path):
        dst = str(tmp_path / "out")
        assert main(["trace", "migrate", trace_path, dst]) == 0
        out = capsys.readouterr().out
        assert "2 batches" in out and "32 references" in out
        assert main(["trace", dst, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "v3" in out and "all checksums verified" in out

    def test_existing_destination_is_usage_error(self, capsys, trace_path,
                                                 tmp_path):
        dst = str(tmp_path / "out")
        assert main(["trace", "migrate", trace_path, dst]) == 0
        capsys.readouterr()
        assert main(["trace", "migrate", trace_path, dst]) == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err and "exists" in err

    def test_unreadable_source_exit_1(self, capsys, tmp_path):
        src = str(tmp_path / "junk.npz")
        with open(src, "wb") as fh:
            fh.write(b"not a trace")
        assert main(["trace", "migrate", src, str(tmp_path / "out")]) == 1
        assert "trace" in capsys.readouterr().err
        import os

        assert not os.path.exists(str(tmp_path / "out.tv3"))

    def test_missing_args_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "migrate"])
        assert exc.value.code == 2


class TestCrashcheck:
    def test_list_names_every_protocol(self, capsys):
        assert main(["crashcheck", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("artifact", "fence", "journal", "queue", "tv3"):
            assert name in out

    def test_unknown_protocol_exit_2(self, capsys):
        assert main(["crashcheck", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "nvscavenger: error" in err and "unknown protocol" in err
        assert "fence" in err  # the valid choices are spelled out

    def test_fence_run_clean_and_writes_corpus(self, capsys, tmp_path):
        corpus = str(tmp_path / "corpus.json")
        rc = main(["crashcheck", "fence", "--max-states", "120",
                   "--corpus", corpus])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fence" in out and "CLEAN" in out
        import json as _json

        with open(corpus) as fh:
            payload = _json.load(fh)
        (report,) = payload["reports"]
        assert report["protocol"] == "fence" and report["clean"]
        assert report["n_unique_states"] > 0
