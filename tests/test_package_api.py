"""Public API surface: exports resolve, version/errors behave."""

import importlib

import pytest

import repro
from repro.errors import (
    AllocationError,
    ConfigurationError,
    InstrumentationError,
    InvalidFreeError,
    MemoryModelError,
    PlacementError,
    ReproError,
    SegmentError,
    SimulationError,
    StackError,
    TraceError,
)

SUBPACKAGES = [
    "repro.util",
    "repro.memory",
    "repro.trace",
    "repro.instrument",
    "repro.scavenger",
    "repro.cachesim",
    "repro.nvram",
    "repro.powersim",
    "repro.perfsim",
    "repro.hybrid",
    "repro.apps",
    "repro.workloads",
    "repro.experiments",
    "repro.validation",
    "repro.cli",
]


def test_version():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_subpackage_imports(modname):
    mod = importlib.import_module(modname)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{modname}.{name}"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            MemoryModelError, AllocationError, InvalidFreeError, StackError,
            SegmentError, TraceError, InstrumentationError,
            ConfigurationError, SimulationError, PlacementError,
        ):
            assert issubclass(exc, ReproError)

    def test_memory_errors_grouped(self):
        for exc in (AllocationError, InvalidFreeError, StackError, SegmentError):
            assert issubclass(exc, MemoryModelError)

    def test_catchable_as_one(self):
        with pytest.raises(ReproError):
            raise AllocationError("x")


def test_cli_validate_subcommand_exists(capsys):
    from repro.cli import main

    # --help exits 0 via SystemExit; just confirm the parser knows it
    with pytest.raises(SystemExit) as exc:
        main(["validate", "--help"])
    assert exc.value.code == 0


def test_experiments_module_entrypoint(capsys):
    from repro.experiments.__main__ import main

    rc = main(["table1", "--refs", "2000", "--scale", "0.004"])
    assert rc == 0
    assert "Applications characteristics" in capsys.readouterr().out
