"""Interval core model, MLP estimation, latency sweeps."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nvram.technology import DRAM_DDR3, MRAM, PCRAM, STTRAM
from repro.perfsim.config import CoreConfig, TABLE3_CORE
from repro.perfsim.core import IntervalCoreModel, WorkloadCounts, estimate_mlp
from repro.perfsim.simulator import PerformanceSimulator


def make_counts(instructions=1_000_000, refs=300_000, l1=30_000, llc=5_000, mlp=8.0):
    return WorkloadCounts(
        instructions=instructions, memory_refs=refs, l1_misses=l1,
        llc_misses=llc, mlp=mlp,
    )


class TestCoreConfig:
    def test_table3_values(self):
        c = TABLE3_CORE
        assert c.frequency_ghz == pytest.approx(2.266)
        assert c.tlb_entries == 32
        assert c.load_fill_queue == 64
        assert c.miss_buffer == 64
        assert c.l1_hit_cycles == 1 and c.l2_hit_cycles == 5

    def test_cycle_conversion(self):
        assert TABLE3_CORE.ns_to_cycles(10.0) == pytest.approx(22.66)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(frequency_ghz=0)
        with pytest.raises(ConfigurationError):
            CoreConfig(l2_hide_fraction=1.5)


class TestIntervalModel:
    def test_cycles_monotone_in_latency(self):
        m = IntervalCoreModel(TABLE3_CORE)
        w = make_counts()
        lats = [10, 12, 20, 50, 100, 500]
        cycles = [m.cycles(w, l) for l in lats]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))

    def test_small_latency_fully_hidden(self):
        """Below the ROB hide threshold the core is latency-insensitive."""
        m = IntervalCoreModel(TABLE3_CORE)
        w = make_counts()
        assert m.cycles(w, 10.0) == m.cycles(w, 11.0)

    def test_slowdown_baseline_is_one(self):
        m = IntervalCoreModel(TABLE3_CORE)
        assert m.slowdown(make_counts(), 10.0) == pytest.approx(1.0)

    def test_mlp_divides_exposure(self):
        m = IntervalCoreModel(TABLE3_CORE)
        lo = make_counts(mlp=1.0)
        hi = make_counts(mlp=16.0)
        loss_lo = m.slowdown(lo, 100.0) - 1
        loss_hi = m.slowdown(hi, 100.0) - 1
        assert loss_lo > loss_hi * 4

    def test_runtime_ns(self):
        m = IntervalCoreModel(TABLE3_CORE)
        w = make_counts()
        assert m.runtime_ns(w, 10.0) == pytest.approx(
            m.cycles(w, 10.0) / 2.266
        )

    def test_no_misses_no_sensitivity(self):
        m = IntervalCoreModel(TABLE3_CORE)
        w = make_counts(l1=0, llc=0)
        assert m.slowdown(w, 500.0) == pytest.approx(1.0)

    def test_invalid_counts(self):
        with pytest.raises(ConfigurationError):
            make_counts(llc=50_000)  # llc > l1
        with pytest.raises(ConfigurationError):
            make_counts(mlp=0.5)
        with pytest.raises(ConfigurationError):
            WorkloadCounts(-1, 0, 0, 0, 1.0)
        m = IntervalCoreModel(TABLE3_CORE)
        with pytest.raises(ConfigurationError):
            m.cycles(make_counts(), 0.0)


class TestMLPEstimator:
    def test_empty_stream(self):
        assert estimate_mlp(np.empty(0, np.uint64)) == 1.0

    def test_pointer_chase_is_serial(self):
        """Repeated hits to one 4 KiB region: no parallelism."""
        addrs = np.zeros(256, dtype=np.uint64)
        assert estimate_mlp(addrs, window=16) == pytest.approx(1.0)

    def test_streaming_is_parallel(self):
        """Each miss on its own page: full window parallelism."""
        addrs = (np.arange(256, dtype=np.uint64)) * 4096
        assert estimate_mlp(addrs, window=16) == pytest.approx(16.0)

    def test_clamped_to_max(self):
        addrs = (np.arange(256, dtype=np.uint64)) * 4096
        assert estimate_mlp(addrs, window=64, max_mlp=32.0) == 32.0

    def test_partial_window_padding(self):
        addrs = (np.arange(20, dtype=np.uint64)) * 4096
        mlp = estimate_mlp(addrs, window=16)
        assert 1.0 <= mlp <= 16.0

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            estimate_mlp(np.zeros(4, np.uint64), window=0)


class TestSimulator:
    def test_sweep_fig12_ordering(self):
        sim = PerformanceSimulator()
        counts = make_counts()
        sweep = sim.sweep("test", counts, [DRAM_DDR3, MRAM, STTRAM, PCRAM])
        assert sweep.slowdown("DDR3") == pytest.approx(1.0)
        assert sweep.slowdown("MRAM") <= sweep.slowdown("STTRAM")
        assert sweep.slowdown("STTRAM") < sweep.slowdown("PCRAM")
        assert sweep.performance_loss("PCRAM") > 0

    def test_sweep_latencies_curve(self):
        sim = PerformanceSimulator()
        curve = sim.sweep_latencies(make_counts(), [10, 20, 100])
        assert [lat for lat, _ in curve] == [10, 20, 100]
        rels = [rel for _, rel in curve]
        assert rels == sorted(rels)
