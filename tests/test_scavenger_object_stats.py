"""Per-object per-iteration counter table."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.scavenger.object_stats import ObjectStatsTable
from repro.trace.record import AccessType, RefBatch


def test_add_batch_counts():
    t = ObjectStatsTable()
    t.add_batch(np.array([0, 0, 1]), np.array([False, True, False]), iteration=1)
    assert t.reads[0, 1] == 1
    assert t.writes[0, 1] == 1
    assert t.reads[1, 1] == 1
    assert t.refs[0, 1] == 2


def test_negative_oids_dropped():
    t = ObjectStatsTable()
    t.add_batch(np.array([-1, 2, -1]), np.array([False, False, True]), iteration=0)
    assert t.n_objects == 3
    assert t.reads.sum() == 1


def test_growth_beyond_hints():
    t = ObjectStatsTable(n_objects_hint=2, n_iterations_hint=2)
    t.add_batch(np.array([10]), np.array([True]), iteration=7)
    assert t.writes[10, 7] == 1
    assert t.n_objects == 11
    assert t.n_iterations == 8


def test_accumulation_across_batches():
    t = ObjectStatsTable()
    for _ in range(5):
        t.add_batch(np.array([0]), np.array([False]), iteration=2)
    assert t.reads[0, 2] == 5


def test_negative_iteration_raises():
    t = ObjectStatsTable()
    with pytest.raises(SimulationError):
        t.add_batch(np.array([0]), np.array([False]), iteration=-1)


def test_totals():
    t = ObjectStatsTable()
    t.add_batch(np.array([0, 1, 1]), np.array([False, True, True]), iteration=1)
    t.add_batch(np.array([0]), np.array([False]), iteration=2)
    r_it, w_it = t.totals_per_iteration()
    assert r_it.tolist() == [0, 1, 1]
    assert w_it.tolist() == [0, 2, 0]
    r_obj, w_obj = t.totals_per_object()
    assert r_obj.tolist() == [2, 0]
    assert w_obj.tolist() == [0, 2]


def test_iterations_touched_excludes_iteration_zero():
    t = ObjectStatsTable()
    t.add_batch(np.array([0]), np.array([False]), iteration=0)  # pre-phase
    t.add_batch(np.array([1]), np.array([False]), iteration=1)
    t.add_batch(np.array([1]), np.array([False]), iteration=3)
    touched = t.iterations_touched(main_loop_only=True)
    assert touched[0] == 0
    assert touched[1] == 2
    all_touched = t.iterations_touched(main_loop_only=False)
    assert all_touched[0] == 1


def test_add_ref_batch():
    t = ObjectStatsTable()
    b = RefBatch.from_access(np.arange(4, dtype=np.uint64), AccessType.WRITE,
                             oid=5, iteration=2)
    t.add_ref_batch(b)
    assert t.writes[5, 2] == 4
    # explicit oids override the batch's own
    t.add_ref_batch(b, oids=np.zeros(4, np.int32))
    assert t.writes[0, 2] == 4


def test_merge():
    a = ObjectStatsTable()
    a.add_batch(np.array([0]), np.array([False]), iteration=1)
    b = ObjectStatsTable()
    b.add_batch(np.array([2]), np.array([True]), iteration=4)
    a.merge(b)
    assert a.reads[0, 1] == 1
    assert a.writes[2, 4] == 1
    assert a.n_objects == 3
    assert a.n_iterations == 5


def test_empty_batch_still_advances_iterations():
    t = ObjectStatsTable()
    t.add_batch(np.empty(0, np.int32), np.empty(0, bool), iteration=6)
    assert t.n_iterations == 7
