"""``nvscavenger serve`` end to end: a real daemon over real sockets.

The contract under test:

* the daemon starts, writes its ``--ready-file``, and answers
  ``/healthz``, ``/readyz``, ``/stats``, and ``POST /analyze``;
* repeated and concurrent requests for one spec produce bit-identical
  digests, with exactly one recording (the dedup counter proves it);
* malformed bodies and unknown routes are structured 400/404, never
  hangs or connection resets;
* a request deadline expiring mid-record surfaces as a structured 504
  and the daemon keeps serving afterwards;
* SIGTERM drains gracefully: ``/readyz`` flips 503 *while the listener
  still answers*, the drain journal lands under the cache root, and the
  exit code is ``128 + signum`` (143; SIGINT gives 130).
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or os.name == "nt",
    reason="daemon tests drive POSIX signals",
)


def request(host, port, method, path, payload=None, timeout=60.0):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"}
                     if body else {})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read()), dict(resp.getheaders())
    finally:
        conn.close()


class Daemon:
    def __init__(self, proc, host, port, cache_dir):
        self.proc = proc
        self.host = host
        self.port = port
        self.cache_dir = cache_dir

    def req(self, method, path, payload=None, timeout=60.0):
        return request(self.host, self.port, method, path, payload, timeout)


def start_daemon(tmp_path, *extra):
    cache_dir = str(tmp_path / "cache")
    ready = str(tmp_path / "ready")
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--cache-dir", cache_dir, "--port", "0",
         "--ready-file", ready, "--grace", "3", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.monotonic() + 30
    while not os.path.exists(ready):
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died at startup:\n{proc.stdout.read()}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("daemon never wrote its ready file")
        time.sleep(0.05)
    host, port = open(ready).read().split()
    return Daemon(proc, host, int(port), cache_dir)


def stop_daemon(d, sig=signal.SIGTERM):
    if d.proc.poll() is None:
        d.proc.send_signal(sig)
    try:
        d.proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        d.proc.kill()
        d.proc.wait(timeout=10)
    return d.proc.returncode


@pytest.fixture
def daemon(tmp_path):
    d = start_daemon(tmp_path)
    yield d
    stop_daemon(d)


REQ = {"app": "gtc", "refs_per_iteration": 300, "scale": 1.0 / 256.0,
       "n_iterations": 2}


class TestRoutes:
    def test_health_ready_stats_and_404(self, daemon):
        status, body, _ = daemon.req("GET", "/healthz")
        assert status == 200 and body["ok"] is True
        status, body, _ = daemon.req("GET", "/readyz")
        assert status == 200 and body["ready"] is True
        status, body, _ = daemon.req("GET", "/stats")
        assert status == 200 and "admission" in body
        status, body, _ = daemon.req("GET", "/no-such-route")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_analyze_cold_then_warm_identical_digest(self, daemon):
        s1, b1, _ = daemon.req("POST", "/analyze", REQ)
        assert s1 == 200, b1
        assert b1["cached"] is False
        assert b1["digest"].startswith("sha256:")
        s2, b2, _ = daemon.req("POST", "/analyze", REQ)
        assert s2 == 200
        assert b2["cached"] is True
        assert b2["digest"] == b1["digest"]
        assert b2["key"] == b1["key"]

    def test_malformed_bodies_are_structured_400(self, daemon):
        conn = http.client.HTTPConnection(daemon.host, daemon.port,
                                          timeout=30)
        try:
            conn.request("POST", "/analyze", body="this is not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 400
            assert body["error"]["code"] == "bad_request"
        finally:
            conn.close()
        status, body, _ = daemon.req("POST", "/analyze",
                                     {"app": "gtc", "bogus": True})
        assert status == 400
        assert "unknown request field" in body["error"]["message"]

    def test_concurrent_duplicates_record_once(self, daemon):
        spec = dict(REQ, seed=42)
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(
                lambda _i: daemon.req("POST", "/analyze", spec), range(6)))
        assert all(s == 200 for s, _b, _h in results)
        assert len({b["digest"] for _s, b, _h in results}) == 1
        _s, stats, _h = daemon.req("GET", "/stats")
        # exactly one recording; everyone else coalesced or hit cache
        assert stats["records"] == 1
        assert stats.get("coalesced", 0) + stats.get("cache_hits", 0) == 5

    def test_deadline_expiry_mid_record_is_504_and_daemon_survives(
            self, daemon):
        heavy = {"app": "gtc", "refs_per_iteration": 1_000_000,
                 "scale": 1.0, "n_iterations": 10, "deadline_s": 0.5}
        status, body, _ = daemon.req("POST", "/analyze", heavy)
        assert status == 504
        assert body["error"]["code"] == "deadline_exceeded"
        status, body, _ = daemon.req("POST", "/analyze", REQ)
        assert status == 200  # not poisoned


class TestDrain:
    def test_sigterm_flips_readyz_before_listener_closes_then_exits_143(
            self, tmp_path):
        d = start_daemon(tmp_path)
        # park a heavy recording in flight: an idle daemon drains (and
        # closes its listener) too fast to observe the readyz flip
        heavy = {"app": "gtc", "refs_per_iteration": 1_000_000,
                 "scale": 1.0, "n_iterations": 10, "deadline_s": 120}
        with ThreadPoolExecutor(max_workers=1) as pool:
            fut = pool.submit(d.req, "POST", "/analyze", heavy, 120.0)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _s, stats, _h = d.req("GET", "/stats")
                if stats["admission"]["inflight"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("recording never became in-flight")
            d.proc.send_signal(signal.SIGTERM)
            # the listener must keep answering during the drain, and
            # report not-ready — that ordering is what lets load
            # balancers stop routing before the socket disappears
            saw_unready = False
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                try:
                    status, body, _ = d.req("GET", "/readyz", timeout=2)
                except (ConnectionError, OSError):
                    break  # listener closed — must have seen 503 first
                if status == 503 and body["draining"]:
                    saw_unready = True
                    break
                time.sleep(0.02)
            # the in-flight request resolves cleanly: finished within the
            # grace window, or cancelled as a structured shutting_down
            status, body, _ = fut.result(timeout=120)
            assert status in (200, 503)
            if status == 503:
                assert body["error"]["code"] == "shutting_down"
        assert saw_unready, "readyz never flipped 503 during drain"
        assert stop_daemon(d) == 143
        journal = os.path.join(d.cache_dir, "service", "drain.json")
        with open(journal) as fh:
            record = json.load(fh)
        assert record["signum"] == signal.SIGTERM
        assert "hint" in record

    def test_sigint_exits_130(self, tmp_path):
        d = start_daemon(tmp_path)
        assert d.req("GET", "/healthz")[0] == 200
        assert stop_daemon(d, signal.SIGINT) == 130

    def test_active_keys_snapshot_cleared_after_drain(self, tmp_path):
        d = start_daemon(tmp_path)
        assert d.req("POST", "/analyze", REQ)[0] == 200
        assert stop_daemon(d) == 143
        from repro.service.active import read_active_keys

        assert read_active_keys(d.cache_dir, max_age_s=3600) == ()
