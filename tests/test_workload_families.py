"""Workload families: registry, spec addressing, trace determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import ModelApp
from repro.cachesim import MemoryTraceProbe
from repro.engine.spec import RunSpec, WORKLOAD_PREFIX
from repro.errors import ConfigurationError
from repro.instrument import InstrumentedRuntime
from repro.service.protocol import RequestError, parse_request
from repro.workloads import FAMILIES, create_workload
from repro.workloads.families import (
    CheckpointWorkload,
    GraphWorkload,
    KVCacheWorkload,
)

FAST = dict(scale=1.0 / 256.0, refs_per_iteration=3_000, n_iterations=6, seed=0)


def run_trace(app):
    probe = MemoryTraceProbe()
    rt = InstrumentedRuntime(probe)
    app(rt)
    rt.finish()
    return probe.memory_trace


class TestRegistry:
    def test_families(self):
        assert set(FAMILIES) == {"kvcache", "graph", "checkpoint"}
        assert FAMILIES["kvcache"] is KVCacheWorkload
        assert FAMILIES["graph"] is GraphWorkload
        assert FAMILIES["checkpoint"] is CheckpointWorkload

    def test_create_workload(self):
        app = create_workload("kvcache", **FAST)
        assert isinstance(app, ModelApp)
        assert app.footprint_bytes > 0

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            create_workload("nope")

    def test_lazy_exports(self):
        import repro.workloads as w

        assert w.KVCacheWorkload is KVCacheWorkload
        with pytest.raises(AttributeError):
            w.NotAWorkload

    def test_separate_from_paper_apps(self):
        from repro.apps import APPLICATIONS

        assert not set(FAMILIES) & set(APPLICATIONS)


class TestSpecAddressing:
    def test_instantiate_workload_prefix(self):
        spec = RunSpec(app=WORKLOAD_PREFIX + "graph", refs_per_iteration=3_000,
                       scale=1.0 / 256.0, n_iterations=6, seed=3)
        app = spec.instantiate()
        assert isinstance(app, GraphWorkload)
        assert app.refs_per_iteration == 3_000
        assert app.n_iterations == 6
        assert app.seed == 3

    def test_instantiate_unknown_workload(self):
        spec = RunSpec(app=WORKLOAD_PREFIX + "nope", refs_per_iteration=10,
                       scale=0.1, n_iterations=1, seed=0)
        with pytest.raises(ConfigurationError):
            spec.instantiate()

    def test_keys_distinguish_families(self):
        mk = lambda app: RunSpec(app=app, refs_per_iteration=10, scale=0.1,
                                 n_iterations=1, seed=0).key
        keys = {mk("workload:kvcache"), mk("workload:graph"),
                mk("workload:checkpoint"), mk("nek5000")}
        assert len(keys) == 4

    def test_service_accepts_workload_specs(self):
        spec, _ = parse_request({"app": "workload:kvcache",
                                 "refs_per_iteration": 100})
        assert spec.app == "workload:kvcache"

    def test_service_lists_workloads_on_unknown_app(self):
        with pytest.raises(RequestError) as exc:
            parse_request({"app": "workload:nope"})
        assert "workload:kvcache" in exc.value.detail["workloads"]


class TestTraces:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_emits_memory_traffic(self, name):
        trace = run_trace(create_workload(name, **FAST))
        assert trace
        refs = sum(len(b) for b in trace)
        writes = sum(int(b.is_write.sum()) for b in trace)
        assert refs > 0
        assert 0 < writes < refs

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_same_seed_same_trace(self, name):
        a = run_trace(create_workload(name, **FAST))
        b = run_trace(create_workload(name, **FAST))
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x.addr, y.addr)
            assert np.array_equal(x.is_write, y.is_write)
            assert x.iteration == y.iteration

    def test_seed_changes_trace(self):
        a = run_trace(create_workload("kvcache", **FAST))
        b = run_trace(create_workload("kvcache", **{**FAST, "seed": 1}))
        assert any(not np.array_equal(x.addr, y.addr) for x, y in zip(a, b))

    def test_checkpoint_traffic_is_bursty(self):
        app = create_workload("checkpoint", **FAST)
        ckpt = next(s for s in app.structures if s.name == "ckpt_buf")
        active = set(ckpt.active_iterations)
        assert active
        assert active < set(range(1, FAST["n_iterations"] + 1))

    def test_kvcache_writes_concentrate_in_arena(self):
        from repro.scavenger import NVScavenger

        app = create_workload("kvcache", **FAST)
        res = NVScavenger().analyze(app, n_main_iterations=FAST["n_iterations"])
        arena = next(m for m in res.object_metrics if "kv_arena" in m.name)
        total = sum(m.writes for m in res.object_metrics)
        assert arena.writes > total * 0.5
