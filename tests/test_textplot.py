"""Text plotting renderers."""


from repro.util.textplot import bar_chart, line_chart, scatter


class TestScatter:
    def test_basic_dimensions(self):
        out = scatter([1, 2, 3], [1, 4, 9], width=20, height=5, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 1 + 5 + 1  # title + grid + x axis
        assert all("|" in l for l in lines[1:6])

    def test_markers_present(self):
        out = scatter([0, 1], [0, 1], width=10, height=4)
        assert out.count("o") == 2

    def test_extremes_at_corners(self):
        out = scatter([0, 10], [0, 10], width=10, height=4)
        lines = [l.split("|")[1] for l in out.splitlines() if "|" in l]
        assert lines[0][-1] == "o"  # max at top right
        assert lines[-1][0] == "o"  # min at bottom left

    def test_nan_inf_dropped(self):
        out = scatter([1, float("nan"), float("inf")], [1, 2, 3], width=10, height=4)
        assert out.count("o") == 1

    def test_log_axes_clip_nonpositive(self):
        out = scatter([0, 1, 10, 100], [1, 1, 1, 1], logx=True, width=10, height=4)
        assert out.count("o") <= 3

    def test_empty(self):
        assert "no finite points" in scatter([], [])

    def test_degenerate_single_point(self):
        out = scatter([5], [5], width=10, height=4)
        assert out.count("o") == 1

    def test_axis_labels(self):
        out = scatter([1, 2], [1, 2], xlabel="ratio", ylabel="rate")
        assert "x: ratio" in out and "y: rate" in out


class TestLineChart:
    def test_multiple_series_distinct_markers(self):
        out = line_chart([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]},
                         width=20, height=6)
        assert "o a" in out and "x b" in out
        assert out.count("o") >= 3
        assert out.count("x") >= 4  # 3 points + legend

    def test_empty(self):
        assert "no data" in line_chart([], {})

    def test_nan_skipped(self):
        out = line_chart([1, 2], {"a": [1.0, float("nan")]}, width=10, height=4)
        assert out.count("o") == 2  # one point + legend marker

    def test_flat_series(self):
        out = line_chart([1, 2, 3], {"a": [5, 5, 5]}, width=12, height=4)
        assert out.count("o") >= 3


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart(["a", "b"], [1.0, 0.5], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_values_printed(self):
        out = bar_chart(["x"], [0.721])
        assert "0.721" in out

    def test_zero_and_nonfinite(self):
        out = bar_chart(["z", "n"], [0.0, float("nan")])
        assert "?" in out

    def test_empty(self):
        assert "no data" in bar_chart([], [])

    def test_custom_format(self):
        out = bar_chart(["p"], [0.25], fmt="{:.0%}")
        assert "25%" in out
