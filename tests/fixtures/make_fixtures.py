"""Regenerate the committed trace-format fixtures in this directory.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/make_fixtures.py

The archives pin the *historical* on-disk formats — ``trace-v1.npz``
(pre-checksum) and ``trace-v2.npz`` (per-batch CRC32) — so the v3
migration path is exercised against bytes an old deployment actually
wrote, not against whatever today's writer happens to emit. The batch
content is seeded and must never change: ``test_trace_fixtures.py``
asserts bit-identity through migration.
"""

import os

import numpy as np

from repro.trace.io import _MAGIC_V1, NpzTraceWriter
from repro.trace.record import RefBatch

HERE = os.path.dirname(os.path.abspath(__file__))


def fixture_batches():
    """The canonical fixture content: 3 batches, every column varying."""
    out = []
    for i in range(3):
        rng = np.random.default_rng(1000 + i)
        n = 50 + 10 * i
        out.append(RefBatch(
            addr=rng.integers(0, 2**48, size=n, dtype=np.uint64),
            is_write=rng.integers(0, 2, size=n).astype(bool),
            size=rng.choice(np.array([1, 4, 8, 64], np.uint8), size=n),
            oid=rng.integers(-1, 32, size=n, dtype=np.int32),
            iteration=i,
        ))
    return out


def write_v1(path, batches):
    arrays = {
        "magic": np.array([_MAGIC_V1]),
        "n_batches": np.array([len(batches)], dtype=np.int64),
    }
    for i, b in enumerate(batches):
        arrays[f"b{i}_addr"] = b.addr
        arrays[f"b{i}_w"] = b.is_write
        arrays[f"b{i}_sz"] = b.size
        arrays[f"b{i}_oid"] = b.oid
        arrays[f"b{i}_it"] = np.array([b.iteration], dtype=np.int64)
    np.savez_compressed(path, **arrays)


def write_v2(path, batches):
    writer = NpzTraceWriter(path)
    for b in batches:
        writer.append(b)
    writer.close()


def main():
    batches = fixture_batches()
    write_v1(os.path.join(HERE, "trace-v1.npz"), batches)
    write_v2(os.path.join(HERE, "trace-v2.npz"), batches)
    print("wrote trace-v1.npz and trace-v2.npz")


if __name__ == "__main__":
    main()
