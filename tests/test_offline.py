"""Offline trace processing: equivalence with the online analyzers."""

import numpy as np

from repro.instrument.api import FanoutProbe
from repro.instrument.runtime import InstrumentedRuntime
from repro.scavenger.global_analysis import GlobalAnalyzer
from repro.scavenger.heap_analysis import HeapAnalyzer
from repro.scavenger.offline import (
    OfflineAnalyzer,
    RawTraceRecorder,
    trace_bytes_per_reference,
)
from tests.conftest import make_app


def run_both(tmp_path, program):
    """Run once with online analyzers + raw recorder; then offline pass."""
    path = tmp_path / "raw.npz"
    fan = FanoutProbe([])
    rt = InstrumentedRuntime(fan)
    heap = HeapAnalyzer(rt.space.layout.heap_segment)
    glob = GlobalAnalyzer(rt.space.layout.global_segment)
    recorder = RawTraceRecorder(path)
    for p in (heap, glob, recorder):
        fan.add(p)
    program(rt)
    rt.finish()
    offline = OfflineAnalyzer(path, recorder.journal).run()
    return heap, glob, recorder, offline, path


def simple_program(rt):
    g = rt.global_array("table", 500)
    h = rt.malloc(200, "x:1")
    for it in (1, 2):
        rt.begin_iteration(it)
        rt.load(g, np.arange(500))
        rt.store(h, np.arange(200))
    rt.free(h)
    h2 = rt.malloc(200, "y:1")  # aliases h's address
    rt.begin_iteration(3)
    rt.load(h2, np.arange(100))
    rt.begin_iteration(0)


def test_offline_matches_online_counts(tmp_path):
    heap, glob, recorder, offline, _ = run_both(tmp_path, simple_program)
    online = np.zeros(
        (max(heap.stats.n_objects, glob.stats.n_objects, offline.stats.n_objects),
         max(heap.stats.n_iterations, glob.stats.n_iterations,
             offline.stats.n_iterations)),
        np.int64,
    )
    for t in (heap.stats, glob.stats):
        online[: t.n_objects, : t.n_iterations] += t.reads + t.writes
    off = np.zeros_like(online)
    off[: offline.stats.n_objects, : offline.stats.n_iterations] = (
        offline.stats.reads + offline.stats.writes
    )
    assert np.array_equal(online, off)
    assert offline.unattributed == heap.unattributed + glob.unattributed == 0


def test_offline_respects_free_alias_timeline(tmp_path):
    """Refs to the freed object and the aliasing successor stay separate."""
    heap, _, recorder, offline, _ = run_both(tmp_path, simple_program)
    oids = {name: oid for oid, (name, _, _) in offline.objects.items()}
    h_oid = oids["heap:x:1"]
    h2_oid = oids["heap:y:1"]
    r, w = offline.stats.totals_per_object()
    assert w[h_oid] == 400
    assert r[h2_oid] == 100
    assert w[h2_oid] == 0


def test_offline_on_model_app(tmp_path):
    heap, glob, recorder, offline, _ = run_both(
        tmp_path, make_app("gtc", refs=4000, iters=3)
    )
    assert offline.total_refs == recorder.refs
    online_total = int(heap.stats.refs.sum() + glob.stats.refs.sum())
    offline_heap_glob = int(offline.stats.refs.sum())
    # the offline pass attributes exactly the same heap+global population
    # (stack refs are unattributed in both)
    assert offline_heap_glob == online_total


def test_trace_size_metric(tmp_path):
    _, _, recorder, _, path = run_both(tmp_path, simple_program)
    bpr = trace_bytes_per_reference(path, recorder.refs)
    # raw traces cost real bytes per reference — the paper's scalability
    # argument (compressed here, still > 0.05 B/ref)
    assert bpr > 0.05
    assert trace_bytes_per_reference(path, 0) == 0.0
