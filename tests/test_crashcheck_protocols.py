"""Full crash checks over the five durable protocols.

Every protocol must come back clean — its acked durability promises
hold in every reachable crash state — and must explore at least 500
deduplicated persisted states, the coverage floor that makes a clean
report mean something.
"""

import pytest

from repro.crashcheck import PROTOCOLS, run_checker

#: The acceptance floor: a protocol run explores at least this many
#: unique persisted states.
MIN_STATES = 500


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_protocol_is_crash_consistent(name, tmp_path):
    report = run_checker(PROTOCOLS[name], str(tmp_path))
    detail = "; ".join(f"{v.message} (schedule {v.schedule})"
                       for v in report.violations[:3])
    assert report.clean, f"{name}: {detail}"
    assert not report.truncated
    assert report.n_unique_states >= MIN_STATES, (
        f"{name} explored only {report.n_unique_states} unique states")
    # every unique state went through the real recovery path
    assert report.n_recovered == report.n_unique_states


def test_registry_names_every_protocol():
    assert sorted(PROTOCOLS) == ["artifact", "fence", "journal", "queue",
                                 "tv3"]
    for name, spec in PROTOCOLS.items():
        assert spec.name == name
        assert spec.description
