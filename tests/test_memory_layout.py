"""Address layout and segment semantics."""

import pytest

from repro.errors import ConfigurationError, SegmentError
from repro.memory.layout import AddressLayout, Segment, SegmentKind


def test_default_layout_segments_are_contiguous():
    lay = AddressLayout()
    g, h, s = lay.global_segment, lay.heap_segment, lay.stack_segment
    assert g.limit == h.base
    assert h.limit == s.base
    assert lay.stack_top == s.limit


def test_segment_kind_classification():
    lay = AddressLayout()
    assert lay.segment_of(lay.global_segment.base) is SegmentKind.GLOBAL
    assert lay.segment_of(lay.heap_segment.base) is SegmentKind.HEAP
    assert lay.segment_of(lay.stack_top - 1) is SegmentKind.STACK


def test_unmapped_address_raises():
    lay = AddressLayout()
    with pytest.raises(SegmentError):
        lay.segment_of(0)
    with pytest.raises(SegmentError):
        lay.segment_of(lay.stack_top)


def test_segment_contains_and_check():
    seg = Segment(SegmentKind.HEAP, 100, 200)
    assert seg.contains(100)
    assert seg.contains(199)
    assert not seg.contains(200)
    assert seg.size == 100
    seg.check(150)
    with pytest.raises(SegmentError):
        seg.check(200)


def test_invalid_segment():
    with pytest.raises(ConfigurationError):
        Segment(SegmentKind.HEAP, 100, 100)


@pytest.mark.parametrize("field", ["global_size", "heap_size", "stack_size"])
def test_invalid_layout_sizes(field):
    with pytest.raises(ConfigurationError):
        AddressLayout(**{field: 0})
