"""Hybrid memory: page map, static placement, migration, energy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.hybrid.energy import HybridEnergyModel
from repro.hybrid.migration import DynamicMigrator
from repro.hybrid.pagemap import MemoryPool, PageMap
from repro.hybrid.placement import PlacementPlan, StaticPlacer
from repro.memory.object import ObjectKind
from repro.nvram.technology import DRAM_DDR3, PCRAM, STTRAM
from repro.scavenger.classify import classify_objects
from repro.scavenger.config import ScavengerConfig
from repro.scavenger.metrics import ObjectMetrics
from repro.trace.record import AccessType, RefBatch


def make_metrics(oid, reads, writes, size=4096, touched=10, write_share=0.0):
    return ObjectMetrics(
        oid=oid, name=f"o{oid}", kind=ObjectKind.GLOBAL, size=size,
        base=0x100000 + oid * 0x10000, reads=reads, writes=writes,
        reference_rate=0.0, write_share=write_share,
        reads_per_iter=np.zeros(11, np.int64),
        writes_per_iter=np.zeros(11, np.int64),
        iterations_touched=touched,
    )


class TestPageMap:
    def test_default_pool_is_dram(self):
        pm = PageMap()
        assert pm.pool_of(0x1234) is MemoryPool.DRAM

    def test_assign_range(self):
        pm = PageMap(page_bytes=4096)
        n = pm.assign_range(0x10000, 3 * 4096, MemoryPool.NVRAM)
        assert n == 3
        assert pm.pool_of(0x10000) is MemoryPool.NVRAM
        assert pm.pool_of(0x10000 + 3 * 4096) is MemoryPool.DRAM

    def test_partial_page_rounds_up(self):
        pm = PageMap(page_bytes=4096)
        assert pm.assign_range(0x1000, 1, MemoryPool.NVRAM) == 1

    def test_migrate_counts_only_changes(self):
        pm = PageMap()
        pm.assign_range(0, 4096, MemoryPool.DRAM)
        assert not pm.migrate_page(0, MemoryPool.DRAM)
        assert pm.migrate_page(0, MemoryPool.NVRAM)
        assert pm.migrations == 1

    def test_pool_of_batch_matches_scalar(self):
        pm = PageMap(page_bytes=4096)
        pm.assign_range(0x10000, 8192, MemoryPool.NVRAM)
        addrs = np.array([0x0, 0x10000, 0x11000, 0x12000, 0x20000], dtype=np.uint64)
        out = pm.pool_of_batch(addrs)
        expected = [int(pm.pool_of(int(a))) for a in addrs]
        assert out.tolist() == expected

    def test_bytes_in_pool(self):
        pm = PageMap(page_bytes=4096)
        pm.assign_range(0, 2 * 4096, MemoryPool.NVRAM)
        assert pm.bytes_in_pool(MemoryPool.NVRAM) == 8192

    def test_invalid_page_size(self):
        with pytest.raises(PlacementError):
            PageMap(page_bytes=1000)

    def test_zero_size_range_owns_no_pages(self):
        pm = PageMap(page_bytes=4096)
        assert pm.pages_of_range(0x1000, 0).size == 0
        assert pm.assign_range(0x1000, 0, MemoryPool.NVRAM) == 0
        assert pm.mapped_pages == 0
        assert pm.pages_of_range(0x1000, -5).size == 0

    def test_exact_page_boundary_is_one_page(self):
        pm = PageMap(page_bytes=4096)
        # [0, 4096) ends exactly at the boundary: page 1 is NOT covered
        assert pm.pages_of_range(0, 4096).tolist() == [0]
        assert pm.pages_of_range(4095, 2).tolist() == [0, 1]

    def test_range_straddling_last_page_of_address_space(self):
        pm = PageMap(page_bytes=4096)
        base = (1 << 64) - 4096  # the final page
        pages = pm.pages_of_range(base, 4096)
        assert pages.tolist() == [(1 << 64) // 4096 - 1]
        assert pm.assign_range(base, 4096, MemoryPool.NVRAM) == 1
        assert pm.pool_of(base) is MemoryPool.NVRAM

    def test_pool_of_batch_at_top_of_address_space(self):
        pm = PageMap(page_bytes=4096)
        top = (1 << 64) - 4096
        pm.assign_range(top, 4096, MemoryPool.NVRAM)
        pm.assign_range(0, 4096, MemoryPool.NVRAM)
        addrs = np.array([0, 4096, top, top + 64], dtype=np.uint64)
        out = pm.pool_of_batch(addrs)
        assert out.tolist() == [int(pm.pool_of(int(a))) for a in addrs]

    def test_pool_of_page(self):
        pm = PageMap(page_bytes=4096)
        pm.assign_range(0x2000, 4096, MemoryPool.NVRAM)
        assert pm.pool_of_page(2) is MemoryPool.NVRAM
        assert pm.pool_of_page(0) is MemoryPool.DRAM  # unmapped default
        assert pm.pool_of_page(np.uint64(2)) is MemoryPool.NVRAM


class TestStaticPlacer:
    CFG = ScavengerConfig()

    def classified(self):
        rows = [
            make_metrics(0, reads=100, writes=0, size=1000),  # read-only
            make_metrics(1, reads=1000, writes=5, size=2000),  # high rw
            make_metrics(2, reads=100, writes=50, size=4000),  # read-leaning
            make_metrics(3, reads=10, writes=100, size=8000),  # write-heavy
        ]
        return rows, classify_objects(rows, self.CFG)

    def test_category1_admits_only_writeless_objects(self):
        _, classified = self.classified()
        plan = StaticPlacer(PCRAM).place(classified)
        # only the read-only object (oid 0) qualifies for category 1
        assert set(plan.nvram_oids) == {0}
        assert plan.nvram_bytes == 1000
        assert plan.nvram_fraction == pytest.approx(1000 / 15000)

    def test_category2_admits_read_leaning(self):
        _, classified = self.classified()
        plan = StaticPlacer(STTRAM).place(classified)
        assert set(plan.nvram_oids) == {0, 1, 2}
        assert 3 in plan.dram_oids

    def test_capacity_spill_largest_first(self):
        _, classified = self.classified()
        plan = StaticPlacer(STTRAM, nvram_capacity=4000).place(classified)
        # largest eligible (oid 2, 4000B) fits; the rest spill
        assert plan.nvram_oids == [2]
        assert set(plan.spilled_oids) == {0, 1}

    def test_page_map_materialization(self):
        rows, classified = self.classified()
        pm = PageMap()
        StaticPlacer(STTRAM).place(classified, page_map=pm)
        assert pm.pool_of(rows[0].base) is MemoryPool.NVRAM
        assert pm.pool_of(rows[3].base) is MemoryPool.DRAM

    def test_dram_tech_rejected(self):
        with pytest.raises(PlacementError):
            StaticPlacer(DRAM_DDR3)


class TestDynamicMigrator:
    def batch(self, pages, write=False):
        addrs = np.asarray(pages, dtype=np.uint64) * 4096
        return RefBatch.from_access(addrs, AccessType.WRITE if write else AccessType.READ)

    def test_write_hot_page_moves_to_dram(self):
        pm = PageMap()
        pm.assign_range(0, 10 * 4096, MemoryPool.NVRAM)
        mig = DynamicMigrator(pm, write_hot_threshold=10, read_popular_threshold=100)
        mig.observe(self.batch([3] * 20, write=True))
        to_dram, _ = mig.end_epoch()
        assert to_dram == 1
        assert pm.pool_of(3 * 4096) is MemoryPool.DRAM

    def test_read_only_page_moves_to_nvram(self):
        pm = PageMap()  # defaults: everything DRAM
        mig = DynamicMigrator(pm, write_hot_threshold=10, read_popular_threshold=100)
        mig.observe(self.batch([5] * 7))  # a few reads, zero writes
        _, to_nvram = mig.end_epoch()
        assert to_nvram == 1
        assert pm.pool_of(5 * 4096) is MemoryPool.NVRAM

    def test_decay_forgets_history(self):
        pm = PageMap()
        mig = DynamicMigrator(pm, write_hot_threshold=16, decay=0.5)
        mig.observe(self.batch([1] * 10, write=True))
        mig.end_epoch()  # below threshold, decays to 5
        mig.observe(self.batch([1] * 10, write=True))  # 5+10=15 < 16
        to_dram, _ = mig.end_epoch()
        assert to_dram == 0

    def test_stats(self):
        pm = PageMap()
        pm.assign_range(0, 2 * 4096, MemoryPool.NVRAM)
        mig = DynamicMigrator(pm, write_hot_threshold=1, read_popular_threshold=1)
        mig.observe(self.batch([0, 1], write=True))
        mig.end_epoch()
        assert mig.stats.epochs == 1
        assert mig.stats.migrations == 2
        assert mig.stats.bytes_moved == 2 * 4096

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            DynamicMigrator(PageMap(), decay=1.0)
        with pytest.raises(ConfigurationError):
            DynamicMigrator(PageMap(), write_hot_threshold=0)
        with pytest.raises(ConfigurationError):
            DynamicMigrator(PageMap(), max_migrations_per_epoch=-1)

    def run_epochs(self, seed):
        """Three epochs of mixed traffic through a budgeted migrator."""
        rng = np.random.default_rng(99)  # traffic fixed; only *seed* varies
        pm = PageMap()
        pm.assign_range(0, 64 * 4096, MemoryPool.NVRAM)
        mig = DynamicMigrator(pm, write_hot_threshold=4,
                              read_popular_threshold=4, rng=seed,
                              max_migrations_per_epoch=8)
        for _ in range(3):
            mig.observe(self.batch(rng.integers(0, 64, 200), write=True))
            mig.observe(self.batch(rng.integers(0, 64, 200)))
            mig.end_epoch()
        placements = sorted((p, int(pm.pool_of_page(p))) for p in range(64))
        return mig.stats, placements

    def test_same_seed_identical_stats(self):
        a_stats, a_pages = self.run_epochs(seed=0)
        b_stats, b_pages = self.run_epochs(seed=0)
        assert a_stats == b_stats
        assert a_pages == b_pages

    def test_budget_caps_each_epoch(self):
        pm = PageMap()
        pm.assign_range(0, 32 * 4096, MemoryPool.NVRAM)
        mig = DynamicMigrator(pm, write_hot_threshold=1,
                              max_migrations_per_epoch=5)
        mig.observe(self.batch(list(range(32)) * 3, write=True))
        to_dram, to_nvram = mig.end_epoch()
        assert to_dram + to_nvram <= 5

    def test_zero_budget_freezes_placement(self):
        pm = PageMap()
        pm.assign_range(0, 8 * 4096, MemoryPool.NVRAM)
        mig = DynamicMigrator(pm, write_hot_threshold=1,
                              max_migrations_per_epoch=0)
        mig.observe(self.batch([0, 1, 2] * 10, write=True))
        assert mig.end_epoch() == (0, 0)
        assert mig.stats.migrations == 0

    def test_unbudgeted_path_unchanged(self):
        # without a budget the migrator never consults its RNG, so any
        # seed gives the classic threshold behavior
        for seed in (0, 7):
            pm = PageMap()
            pm.assign_range(0, 4 * 4096, MemoryPool.NVRAM)
            mig = DynamicMigrator(pm, write_hot_threshold=10, rng=seed)
            mig.observe(self.batch([2] * 20, write=True))
            assert mig.end_epoch() == (1, 0)


class TestEnergyModel:
    def test_all_nvram_read_only_saves_static(self):
        rows = [make_metrics(0, reads=1000, writes=0, size=1 << 20)]
        plan = PlacementPlan(tech_name="PCRAM", nvram_oids=[0], nvram_bytes=1 << 20)
        model = HybridEnergyModel(PCRAM)
        window = model.calibrated_window_ns(rows)
        hybrid = model.energy(rows, plan, window)
        base = model.all_dram_baseline(rows, window)
        assert hybrid.savings_vs(base) > 0.3  # static share was 40%
        assert hybrid.static_nj == 0.0

    def test_write_heavy_nvram_can_cost_energy(self):
        rows = [make_metrics(0, reads=10, writes=10_000, size=4096)]
        plan = PlacementPlan(tech_name="STTRAM", nvram_oids=[0], nvram_bytes=4096)
        model = HybridEnergyModel(STTRAM)
        window = model.calibrated_window_ns(rows)
        hybrid = model.energy(rows, plan, window)
        base = model.all_dram_baseline(rows, window)
        assert hybrid.savings_vs(base) < 0.2  # writes at 150 mA eat the saving

    def test_memory_access_fraction_scales_dynamic(self):
        rows = [make_metrics(0, reads=1000, writes=0)]
        model = HybridEnergyModel(PCRAM)
        full = model.all_dram_baseline(rows, 1e6, memory_access_fraction=1.0)
        tenth = model.all_dram_baseline(rows, 1e6, memory_access_fraction=0.1)
        assert tenth.dynamic_nj == pytest.approx(full.dynamic_nj * 0.1, rel=0.01)

    def test_calibrated_window_hits_static_fraction(self):
        rows = [make_metrics(0, reads=5000, writes=500, size=1 << 20)]
        model = HybridEnergyModel(PCRAM)
        w = model.calibrated_window_ns(rows, static_fraction=0.4)
        base = model.all_dram_baseline(rows, w)
        assert base.static_nj / base.total_nj == pytest.approx(0.4, rel=0.01)

    def test_average_power(self):
        rows = [make_metrics(0, reads=100, writes=0)]
        rep = HybridEnergyModel(PCRAM).all_dram_baseline(rows, 1e6)
        assert rep.average_power_mw == pytest.approx(rep.total_nj / 1e6 * 1e3)

    def test_invalid(self):
        model = HybridEnergyModel(PCRAM)
        with pytest.raises(PlacementError):
            model.energy([], PlacementPlan("x"), 0.0)
        with pytest.raises(PlacementError):
            model.calibrated_window_ns([make_metrics(0, 1, 0)], static_fraction=1.5)
