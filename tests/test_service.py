"""repro.service: protocol, admission, breakers, workers, gc protection.

The contract under test:

* requests are validated **before** admission — malformed JSON shapes,
  unknown fields, bad types, unknown apps, and over-budget asks are all
  structured ``bad_request`` rejections;
* admission sheds load explicitly (``overloaded`` + retry hint) instead
  of queueing unboundedly, enforces deadlines while queued, and never
  strands a slot when a waiter times out;
* the circuit breaker opens after K consecutive failures, fails fast
  with the *last root cause*, half-opens after a jittered exponential
  backoff, admits exactly one probe, and never wedges when a probe ends
  without a verdict;
* a recording whose deadline expires mid-record is killed without
  leaking the key lock or a partial artifact — the cache stays
  recordable and a follow-up request succeeds (the satellite (c)
  regression);
* a live daemon's in-flight spec keys survive ``gc`` (the satellite (b)
  regression), while a dead daemon's stale snapshot protects nothing.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time

import pytest

from repro.engine.artifacts import ArtifactCache
from repro.engine.engine import PipelineEngine
from repro.engine.spec import RunSpec
from repro.service.active import (
    active_keys_path,
    clear_active_keys,
    read_active_keys,
    write_active_keys,
)
from repro.service.admission import AdmissionController
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from repro.service.protocol import (
    ERROR_CODES,
    ERROR_STATUS,
    RequestError,
    ServiceError,
    digest_payload,
    error_body,
    parse_request,
)
from repro.service.server import AnalysisService, ServeConfig
from repro.service.worker import RecordHandle, run_record_worker

SMALL = dict(refs_per_iteration=300, scale=1.0 / 256.0, n_iterations=2)


def small_spec(**kw) -> RunSpec:
    return RunSpec(app="gtc", **{**SMALL, **kw})


# ----------------------------------------------------------------------
class TestProtocol:
    def test_minimal_request_parses_with_spec_defaults(self):
        spec, deadline = parse_request({"app": "gtc"})
        assert spec.app == "gtc"
        assert deadline == 60.0

    def test_full_request_round_trips_every_field(self):
        spec, deadline = parse_request({
            "app": "cam", "refs_per_iteration": 1000, "scale": 0.5,
            "n_iterations": 3, "seed": 7, "deadline_s": 12.5})
        assert (spec.app, spec.refs_per_iteration, spec.scale,
                spec.n_iterations, spec.seed) == ("cam", 1000, 0.5, 3, 7)
        assert deadline == 12.5

    def test_identical_requests_share_a_key(self):
        a, _ = parse_request({"app": "gtc", "seed": 1})
        b, _ = parse_request({"deadline_s": 99, "app": "gtc", "seed": 1})
        assert a.key == b.key  # deadline is not part of spec identity

    @pytest.mark.parametrize("payload,fragment", [
        ("not a dict", "JSON object"),
        ([1, 2], "JSON object"),
        ({}, "missing required field 'app'"),
        ({"app": "gtc", "bogus": 1}, "unknown request field"),
        ({"app": "no-such-app"}, "unknown application"),
        ({"app": 7}, "must be"),
        ({"app": "gtc", "refs_per_iteration": "many"}, "must be"),
        ({"app": "gtc", "seed": True}, "must be"),  # bool is not an int here
        ({"app": "gtc", "refs_per_iteration": -5}, "must be positive"),
        ({"app": "gtc", "scale": 0}, "must be positive"),
        ({"app": "gtc", "deadline_s": 0}, "must be positive"),
        ({"app": "gtc", "deadline_s": "soon"}, "must be a number"),
    ])
    def test_malformed_requests_rejected(self, payload, fragment):
        with pytest.raises(RequestError, match=fragment):
            parse_request(payload)

    def test_over_budget_request_rejected_with_detail(self):
        with pytest.raises(RequestError, match="at most 1000") as ei:
            parse_request({"app": "gtc", "refs_per_iteration": 600,
                           "n_iterations": 2}, max_total_refs=1000)
        assert ei.value.detail == {"max_total_refs": 1000}

    def test_excessive_deadline_clamped_not_rejected(self):
        _, deadline = parse_request(
            {"app": "gtc", "deadline_s": 1e9}, max_deadline_s=600.0)
        assert deadline == 600.0

    def test_variant_apps_accepted(self):
        spec, _ = parse_request({"app": "variant:gtc"})
        assert spec.app == "variant:gtc"

    def test_every_error_code_has_a_status(self):
        assert set(ERROR_STATUS) == set(ERROR_CODES)
        for code, status in ERROR_STATUS.items():
            assert 400 <= status <= 599, code

    def test_error_body_shape(self):
        body = error_body("overloaded", "queue full", retry_after_s=2.5,
                          detail={"queued": 4})
        assert body == {"ok": False, "error": {
            "code": "overloaded", "message": "queue full",
            "retry_after_s": 2.5, "detail": {"queued": 4}}}

    def test_service_error_status_and_body(self):
        exc = ServiceError("breaker_open", "failing fast", retry_after_s=3.0)
        assert exc.status == 503
        assert exc.body()["error"]["code"] == "breaker_open"

    def test_digest_stable_across_rerecords(self, tmp_path):
        spec = small_spec()
        payloads = []
        for sub in ("a", "b"):  # two fresh caches: fresh record each
            engine = PipelineEngine(cache=ArtifactCache(tmp_path / sub))
            events, batches = engine.record(spec).verify_load()
            payloads.append(digest_payload(events, batches))
        assert payloads[0] == payloads[1]
        assert payloads[0].startswith("sha256:")

    def test_digest_distinguishes_specs(self, tmp_path):
        engine = PipelineEngine(cache=ArtifactCache(tmp_path))
        d = []
        for seed in (0, 1):
            ev, b = engine.record(small_spec(seed=seed)).verify_load()
            d.append(digest_payload(ev, b))
        assert d[0] != d[1]


# ----------------------------------------------------------------------
def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(0, 4)
        with pytest.raises(ValueError):
            AdmissionController(1, -1)

    def test_admits_up_to_max_inflight(self):
        async def scenario():
            adm = AdmissionController(2, 4)
            await adm.acquire(deadline=time.monotonic() + 5)
            await adm.acquire(deadline=time.monotonic() + 5)
            assert adm.inflight == 2 and adm.queued == 0
            adm.release()
            assert adm.inflight == 1
        run(scenario())

    def test_queue_overflow_sheds_with_retry_hint(self):
        async def scenario():
            adm = AdmissionController(1, 1)
            await adm.acquire(deadline=time.monotonic() + 5)
            waiter = asyncio.ensure_future(
                adm.acquire(deadline=time.monotonic() + 5))
            await asyncio.sleep(0)  # let it enqueue
            with pytest.raises(ServiceError) as ei:
                await adm.acquire(deadline=time.monotonic() + 5)
            assert ei.value.code == "overloaded"
            assert ei.value.retry_after_s > 0
            assert adm.stats["rejected_overload"] == 1
            adm.release()
            await waiter  # the queued request still gets its slot
            adm.release()
        run(scenario())

    def test_queued_deadline_expiry_frees_no_slot_and_is_fifo_safe(self):
        async def scenario():
            adm = AdmissionController(1, 4)
            await adm.acquire(deadline=time.monotonic() + 5)
            with pytest.raises(ServiceError) as ei:
                await adm.acquire(deadline=time.monotonic() + 0.05)
            assert ei.value.code == "deadline_exceeded"
            assert adm.stats["expired_in_queue"] == 1
            # the expired waiter must not have leaked the queue entry
            assert adm.queued == 0
            adm.release()
            # the slot is still usable
            await adm.acquire(deadline=time.monotonic() + 5)
        run(scenario())

    def test_release_wakes_waiters_in_fifo_order(self):
        async def scenario():
            adm = AdmissionController(1, 4)
            await adm.acquire(deadline=time.monotonic() + 5)
            order = []

            async def waiter(tag):
                await adm.acquire(deadline=time.monotonic() + 5)
                order.append(tag)

            tasks = [asyncio.ensure_future(waiter(i)) for i in range(3)]
            await asyncio.sleep(0.01)
            for _ in range(3):
                adm.release()
                await asyncio.sleep(0.01)
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]
        run(scenario())

    def test_drain_rejects_new_and_fails_queued(self):
        async def scenario():
            adm = AdmissionController(1, 4)
            await adm.acquire(deadline=time.monotonic() + 5)
            queued = asyncio.ensure_future(
                adm.acquire(deadline=time.monotonic() + 5))
            await asyncio.sleep(0)
            adm.start_drain()
            with pytest.raises(ServiceError) as ei:
                await queued
            assert ei.value.code == "shutting_down"
            with pytest.raises(ServiceError) as ei2:
                await adm.acquire(deadline=time.monotonic() + 5)
            assert ei2.value.code == "shutting_down"
            assert adm.stats["rejected_draining"] == 1
        run(scenario())

    def test_retry_hint_tracks_observed_service_time(self):
        adm = AdmissionController(2, 4)
        adm.observe_service_time(4.0)
        assert adm._service_s == 4.0
        adm.observe_service_time(2.0)  # EWMA moves toward the new sample
        assert 2.0 < adm._service_s < 4.0
        assert adm.retry_after_hint() >= 0.1


# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clk = FakeClock()
        br = CircuitBreaker(threshold=3, clock=clk)
        br.record_failure("disk on fire")
        br.record_failure("disk on fire")
        assert br.state == CLOSED and br.allow()
        br.record_failure("disk on fire")
        assert br.state == OPEN
        assert not br.allow()
        assert br.last_error == "disk on fire"
        assert br.retry_after_s > 0

    def test_success_resets_the_streak(self):
        br = CircuitBreaker(threshold=2, clock=FakeClock())
        br.record_failure("x")
        br.record_success()
        br.record_failure("x")
        assert br.state == CLOSED  # streak broken: 1, not 2

    def test_half_open_admits_exactly_one_probe(self):
        clk = FakeClock()
        br = CircuitBreaker(threshold=1, base_backoff_s=1.0, jitter=0.0,
                            clock=clk)
        br.record_failure("boom")
        assert br.state == OPEN
        clk.t += 1.0
        assert br.state == HALF_OPEN
        assert br.allow()       # the probe
        assert not br.allow()   # everyone else keeps failing fast

    def test_failed_probe_reopens_with_doubled_backoff(self):
        clk = FakeClock()
        br = CircuitBreaker(threshold=1, base_backoff_s=1.0, jitter=0.0,
                            max_backoff_s=30.0, clock=clk)
        br.record_failure("boom")
        first = br.retry_after_s
        clk.t += first
        assert br.allow()
        br.record_failure("boom again")
        assert br.state == OPEN
        assert br.retry_after_s == pytest.approx(2.0)  # doubled

    def test_successful_probe_closes_and_resets_backoff(self):
        clk = FakeClock()
        br = CircuitBreaker(threshold=1, base_backoff_s=1.0, jitter=0.0,
                            clock=clk)
        br.record_failure("boom")
        clk.t += 1.0
        assert br.allow()
        br.record_success()
        assert br.state == CLOSED
        br.record_failure("later")
        assert br.retry_after_s == pytest.approx(1.0)  # back to base

    def test_backoff_bounded_by_max(self):
        clk = FakeClock()
        br = CircuitBreaker(threshold=1, base_backoff_s=1.0, jitter=0.0,
                            max_backoff_s=4.0, clock=clk)
        for _ in range(6):  # would be 32s unbounded
            br.record_failure("boom")
            clk.t += br.retry_after_s
            br.allow()
        br.record_failure("boom")
        assert br.retry_after_s <= 4.0

    def test_jitter_is_deterministic_per_seed(self):
        for seed in (1, 2):
            a = CircuitBreaker(threshold=1, jitter=0.5, seed=seed,
                               clock=FakeClock())
            b = CircuitBreaker(threshold=1, jitter=0.5, seed=seed,
                               clock=FakeClock())
            a.record_failure("x")
            b.record_failure("x")
            assert a.retry_after_s == b.retry_after_s

    def test_abandoned_probe_never_wedges_half_open(self):
        clk = FakeClock()
        br = CircuitBreaker(threshold=1, base_backoff_s=1.0, jitter=0.0,
                            clock=clk)
        br.record_failure("boom")
        clk.t += 1.0
        assert br.allow()
        # the probe's request timed out: neither success nor failure
        assert not br.allow()
        br.abandon_probe()
        assert br.allow()  # the next caller gets the probe slot

    def test_board_isolates_keys_but_feeds_root(self):
        clk = FakeClock()
        board = BreakerBoard(threshold=2, root_threshold=3, clock=clk)
        board.record_failure("k1", "bad spec")
        board.record_failure("k1", "bad spec")
        assert board.for_key("k1").state == OPEN
        assert board.for_key("k2").state == CLOSED  # unaffected
        assert board.root.state == CLOSED           # 2 < root threshold
        board.record_failure("k2", "bad disk")
        assert board.root.state == OPEN             # systemic now
        assert board.n_open >= 1
        snap = board.snapshot()
        assert snap["root_state"] == OPEN

    def test_board_success_heals_both_layers(self):
        clk = FakeClock()
        board = BreakerBoard(threshold=1, root_threshold=1,
                             base_backoff_s=1.0, clock=clk)
        board.record_failure("k", "boom")
        assert board.root.state == OPEN
        clk.t += 100.0
        board.record_success("k")
        assert board.root.state == CLOSED
        assert board.for_key("k").state == CLOSED


# ----------------------------------------------------------------------
needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker tests exercise killable child processes",
)


@needs_fork
class TestRecordWorker:
    def test_successful_record_reports_payload(self, tmp_path):
        spec = small_spec()
        handle = RecordHandle(time.monotonic() + 120)
        out = run_record_worker(spec, str(tmp_path), handle)
        assert out["ok"] is True
        assert out["key"] == spec.key
        assert out["digest"].startswith("sha256:")
        assert ArtifactCache(tmp_path).get(spec) is not None

    def test_deadline_expiry_mid_record_releases_lock_and_cache_recovers(
            self, tmp_path):
        """The satellite (c) contract: a killed recording leaks nothing."""
        # a deliberately heavy spec so the deadline lands mid-record
        spec = RunSpec(app="gtc", refs_per_iteration=1_000_000,
                       scale=1.0, n_iterations=10)
        handle = RecordHandle(time.monotonic() + 0.4)
        t0 = time.monotonic()
        out = run_record_worker(spec, str(tmp_path), handle)
        assert out["ok"] is False
        assert out["code"] == "deadline_exceeded"
        assert time.monotonic() - t0 < 30  # killed, not run to completion
        cache = ArtifactCache(tmp_path)
        # no committed artifact leaked...
        assert cache.get(spec) is None
        # ...and the key lock was released by the kernel with the child
        lock = cache.lock_for(spec.key)
        assert lock.try_acquire()
        lock.release()
        # the cache is still recordable: a patient follow-up succeeds
        cheap = small_spec()
        out2 = run_record_worker(
            cheap, str(tmp_path), RecordHandle(time.monotonic() + 120))
        assert out2["ok"] is True
        assert ArtifactCache(tmp_path).get(cheap) is not None

    def test_cancel_kills_worker_with_shutting_down(self, tmp_path):
        spec = RunSpec(app="gtc", refs_per_iteration=1_000_000,
                       scale=1.0, n_iterations=10)
        handle = RecordHandle(time.monotonic() + 120)
        handle.cancel()  # drain began before the worker even started
        out = run_record_worker(spec, str(tmp_path), handle)
        assert out["ok"] is False
        assert out["code"] == "shutting_down"
        assert ArtifactCache(tmp_path).get(spec) is None

    def test_extend_deadline_only_grows(self):
        handle = RecordHandle(100.0)
        handle.extend_deadline(50.0)
        assert handle.deadline == 100.0  # a shorter deadline never wins
        handle.extend_deadline(200.0)
        assert handle.deadline == 200.0

    def test_chaos_failure_reports_structured_record_failed(self, tmp_path):
        spec = small_spec()
        handle = RecordHandle(time.monotonic() + 60)
        out = run_record_worker(
            spec, str(tmp_path), handle,
            chaos_scenario="io-bitflip-refs-persistent", chaos_seed=3)
        assert out["ok"] is False
        assert out["code"] == "record_failed"
        assert out["message"]


# ----------------------------------------------------------------------
class TestActiveKeys:
    def test_round_trip(self, tmp_path):
        write_active_keys(tmp_path, ["b", "a", "a"])
        assert read_active_keys(tmp_path) == ("a", "b")
        clear_active_keys(tmp_path)
        assert read_active_keys(tmp_path) == ()

    def test_missing_and_torn_files_read_as_empty(self, tmp_path):
        assert read_active_keys(tmp_path) == ()
        os.makedirs(os.path.dirname(active_keys_path(tmp_path)),
                    exist_ok=True)
        with open(active_keys_path(tmp_path), "w") as fh:
            fh.write('{"pid": 1, "upd')  # torn mid-write
        assert read_active_keys(tmp_path) == ()

    def test_stale_snapshot_is_a_dead_daemon(self, tmp_path):
        write_active_keys(tmp_path, ["k"])
        path = active_keys_path(tmp_path)
        payload = json.load(open(path))
        payload["updated"] -= 3600.0
        json.dump(payload, open(path, "w"))
        assert read_active_keys(tmp_path) == ()
        assert read_active_keys(tmp_path, max_age_s=7200) == ("k",)

    def test_gc_protects_live_daemons_keys(self, tmp_path):
        """The satellite (b) regression: an operator's ``engine gc``
        against a live daemon's root must not evict in-flight keys."""
        cache = ArtifactCache(tmp_path)
        engine = PipelineEngine(cache=cache)
        keep, evict = small_spec(seed=1), small_spec(seed=2)
        engine.record(keep)
        engine.record(evict)
        write_active_keys(tmp_path, [keep.key])
        protect = read_active_keys(tmp_path)
        report = cache.gc(0, protect=protect)  # zero budget: evict all
        assert cache.get(keep) is not None     # protected key survived
        assert cache.get(evict) is None
        assert keep.key not in report.evicted

    def test_gc_ignores_stale_protection(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        engine = PipelineEngine(cache=cache)
        spec = small_spec()
        engine.record(spec)
        write_active_keys(tmp_path, [spec.key])
        path = active_keys_path(tmp_path)
        payload = json.load(open(path))
        payload["updated"] -= 3600.0
        json.dump(payload, open(path, "w"))
        protect = read_active_keys(tmp_path)
        cache.gc(0, protect=protect)
        assert cache.get(spec) is None  # dead daemon protects nothing


# ----------------------------------------------------------------------
def make_service(tmp_path, **kw) -> AnalysisService:
    defaults = dict(cache_root=str(tmp_path / "cache"), max_inflight=2,
                    max_queue=4, default_deadline_s=60.0)
    return AnalysisService(ServeConfig(**{**defaults, **kw}))


REQ = {"app": "gtc", "refs_per_iteration": 300, "scale": 1.0 / 256.0,
       "n_iterations": 2}


class TestAnalysisService:
    def test_record_then_warm_hit_with_identical_digest(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path)
            s1, b1, _ = await svc.handle_analyze(REQ)
            s2, b2, _ = await svc.handle_analyze(REQ)
            assert (s1, s2) == (200, 200)
            assert b1["cached"] is False and b2["cached"] is True
            assert b1["digest"] == b2["digest"]
            assert b1["meta"]["refs"] > 0
            assert svc.stats["records"] == 1
            assert svc.stats["cache_hits"] == 1
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_concurrent_identical_specs_coalesce(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path)
            results = await asyncio.gather(
                *[svc.handle_analyze(REQ) for _ in range(4)])
            assert all(s == 200 for s, _b, _h in results)
            digests = {b["digest"] for _s, b, _h in results}
            assert len(digests) == 1  # bit-identical answers
            assert svc.stats["records"] == 1  # exactly one execution
            assert svc.stats["coalesced"] == 3
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_bad_request_is_structured_400(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path)
            status, body, _ = await svc.handle_analyze({"app": "gtc",
                                                        "bogus": 1})
            assert status == 400
            assert body["error"]["code"] == "bad_request"
            assert svc.stats["err_bad_request"] == 1
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_breaker_opens_and_fails_fast_with_root_cause(self, tmp_path):
        async def scenario():
            svc = make_service(
                tmp_path, breaker_threshold=2,
                breaker_backoff_s=60.0,  # stays open for the whole test
                chaos_scenario="io-bitflip-refs-persistent")
            s1, b1, _ = await svc.handle_analyze(REQ)
            s2, _b2, _ = await svc.handle_analyze(REQ)
            assert s1 == 500 and s2 == 500  # two real failed attempts
            t0 = time.monotonic()
            s3, b3, h3 = await svc.handle_analyze(REQ)
            fast = time.monotonic() - t0
            assert s3 == 503
            assert b3["error"]["code"] == "breaker_open"
            # the fail-fast carries the last root cause, not a generic msg
            assert b1["error"]["message"].split(":")[0] in \
                b3["error"]["message"]
            assert fast < 2.0  # no recording attempt was made
            assert "Retry-After" in h3
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_breaker_recovers_after_fault_clears(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path, breaker_threshold=1,
                               breaker_backoff_s=0.05,
                               chaos_scenario="io-bitflip-refs-persistent")
            s1, _b, _ = await svc.handle_analyze(REQ)
            assert s1 == 500
            svc.cfg.chaos_scenario = None  # the disk healed
            await asyncio.sleep(0.2)       # past the backoff: half-open
            s2, b2, _ = await svc.handle_analyze(REQ)
            assert s2 == 200               # the probe closed the breaker
            assert b2["cached"] is False
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_overload_sheds_with_503_and_retry_after(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path, max_inflight=1, max_queue=0)
            # a spec heavy enough to hold the only slot for seconds, so
            # the shed below is deterministic on any machine
            slow = {"app": "gtc", "refs_per_iteration": 1_000_000,
                    "scale": 1.0, "n_iterations": 10}
            fast = dict(REQ, seed=102)
            task = asyncio.ensure_future(svc.handle_analyze(slow))
            while not svc.admission.inflight:  # wait for slot claim
                await asyncio.sleep(0.01)
            status, body, headers = await svc.handle_analyze(fast)
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            assert "Retry-After" in headers
            # cancel the occupant rather than waiting out the record
            for _fut, handle in svc._inflight.values():
                handle.cancel()
            s1, b1, _ = await task
            assert s1 == 503
            assert b1["error"]["code"] == "shutting_down"
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_drain_rejects_new_flips_ready_and_journals(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path, grace_s=0.2)
            s, _b, _ = await svc.handle_analyze(REQ)  # warm one key
            assert s == 200
            assert svc.ready
            drain = asyncio.ensure_future(svc.drain(signum=15))
            await asyncio.sleep(0.01)
            assert not svc.ready  # readiness flips during drain
            status, body, _ = await svc.handle_analyze(dict(REQ, seed=9))
            assert status == 503
            assert body["error"]["code"] == "shutting_down"
            await drain
            journal = os.path.join(svc.cfg.cache_root, "service",
                                   "drain.json")
            with open(journal) as fh:
                record = json.load(fh)
            assert record["signum"] == 15
            assert "hint" in record
        run(scenario())

    def test_deadline_exceeded_mid_record_is_504_and_cache_recovers(
            self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path)
            heavy = {"app": "gtc", "refs_per_iteration": 1_000_000,
                     "scale": 1.0, "n_iterations": 10,
                     "deadline_s": 0.4}
            status, body, _ = await svc.handle_analyze(heavy)
            assert status == 504
            assert body["error"]["code"] == "deadline_exceeded"
            # the service is not poisoned: another spec succeeds
            s2, _b2, _ = await svc.handle_analyze(REQ)
            assert s2 == 200
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_in_flight_keys_are_advertised_for_gc(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path)
            heavy = {"app": "gtc", "refs_per_iteration": 1_000_000,
                     "scale": 1.0, "n_iterations": 10}
            spec, _ = parse_request(heavy)
            task = asyncio.ensure_future(svc.handle_analyze(heavy))
            while not svc.protect_keys():  # admitted -> advertised
                await asyncio.sleep(0.01)
            assert spec.key in svc.protect_keys()
            for _fut, handle in svc._inflight.values():
                handle.cancel()
            await task
            assert spec.key not in svc.protect_keys()  # released after
            svc._executor.shutdown(wait=True)
        run(scenario())

    def test_snapshot_is_json_serializable(self, tmp_path):
        async def scenario():
            svc = make_service(tmp_path)
            await svc.handle_analyze(REQ)
            snap = svc.snapshot()
            json.dumps(snap)
            assert snap["ready"] is True
            assert snap["admission"]["admitted"] == 1
            svc._executor.shutdown(wait=True)
        run(scenario())
