"""Deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rngs, stable_hash32


def test_make_rng_from_int_deterministic():
    a = make_rng(42).integers(0, 1_000_000, 10)
    b = make_rng(42).integers(0, 1_000_000, 10)
    assert np.array_equal(a, b)


def test_make_rng_passthrough():
    g = np.random.default_rng(0)
    assert make_rng(g) is g


def test_spawn_rngs_independent_and_deterministic():
    rngs1 = spawn_rngs(7, 4)
    rngs2 = spawn_rngs(7, 4)
    draws1 = [g.integers(0, 1 << 30) for g in rngs1]
    draws2 = [g.integers(0, 1 << 30) for g in rngs2]
    assert draws1 == draws2
    assert len(set(draws1)) == 4  # children differ from each other


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero():
    assert spawn_rngs(0, 0) == []


def test_stable_hash32_process_stable_values():
    # pinned values guard against accidental algorithm changes, which would
    # silently reshuffle every app's jitter/phase patterns
    h1 = stable_hash32(("nek5000", "velocity_fields", 3))
    h2 = stable_hash32(("nek5000", "velocity_fields", 3))
    assert h1 == h2
    assert 0 <= h1 <= 0xFFFFFFFF
    assert stable_hash32(("a",)) != stable_hash32(("b",))


def test_stable_hash32_order_sensitive():
    assert stable_hash32((1, 2)) != stable_hash32((2, 1))
