"""Edge cases of the analytic checkpoint model (hybrid/checkpoint.py)."""

import pytest

from repro.errors import ConfigurationError
from repro.hybrid.checkpoint import (
    NVRAM_LOCAL,
    PFS_DISK,
    CheckpointTarget,
    compare_targets,
    nvram_capacity_for_checkpointing,
    plan_checkpoints,
)
from repro.util.units import GiB, MiB, TiB


class TestTinyMTBF:
    @pytest.mark.parametrize("mtbf", [1e-3, 1.0, 60.0])
    def test_efficiency_clamped_and_positive(self, mtbf):
        for target in (PFS_DISK, NVRAM_LOCAL):
            plan = plan_checkpoints(1 * GiB, mtbf, target)
            assert 0.0 < plan.efficiency <= 1.0
            assert plan.optimal_interval_s > 0
            assert plan.checkpoints_per_hour > 0


class TestHugeFootprints:
    @pytest.mark.parametrize("footprint", [1 * TiB, 64 * TiB])
    def test_model_stays_finite(self, footprint):
        for target in (PFS_DISK, NVRAM_LOCAL):
            plan = plan_checkpoints(footprint, 6 * 3600.0, target)
            assert 0.0 < plan.efficiency <= 1.0
            assert plan.checkpoint_s == pytest.approx(
                target.latency_s + footprint / (target.bandwidth_gbs * 1e9))

    def test_capacity_scales_with_buffers(self):
        assert nvram_capacity_for_checkpointing(64 * TiB) == 128 * TiB
        assert nvram_capacity_for_checkpointing(1 * GiB, n_buffers=3) == 3 * GiB


class TestOrderingInvariant:
    @pytest.mark.parametrize("footprint", [8 * MiB, 512 * MiB, 16 * GiB, 1 * TiB])
    @pytest.mark.parametrize("mtbf", [600.0, 6 * 3600.0, 7 * 24 * 3600.0])
    def test_nvram_never_worse_than_disk(self, footprint, mtbf):
        plans = compare_targets(footprint, mtbf)
        assert plans["NVRAM"].efficiency >= plans["PFS-disk"].efficiency
        assert plans["NVRAM"].checkpoint_s < plans["PFS-disk"].checkpoint_s


class TestValidation:
    def test_plan_rejects_nonpositive_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_checkpoints(0, 3600.0, PFS_DISK)
        with pytest.raises(ConfigurationError):
            plan_checkpoints(-1, 3600.0, PFS_DISK)
        with pytest.raises(ConfigurationError):
            plan_checkpoints(1 * GiB, 0.0, PFS_DISK)

    def test_capacity_validation_errors(self):
        with pytest.raises(ConfigurationError):
            nvram_capacity_for_checkpointing(0)
        with pytest.raises(ConfigurationError):
            nvram_capacity_for_checkpointing(-5)
        with pytest.raises(ConfigurationError):
            nvram_capacity_for_checkpointing(1 * GiB, n_buffers=0)

    def test_target_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointTarget(name="bad", bandwidth_gbs=0.0, latency_s=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointTarget(name="bad", bandwidth_gbs=1.0, latency_s=-1.0)
