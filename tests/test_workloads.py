"""Synthetic pattern generators and declarative workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.instrument.api import FanoutProbe
from repro.instrument.runtime import InstrumentedRuntime
from repro.scavenger import NVScavenger
from repro.workloads import synthetic
from repro.workloads.generator import ObjectSpec, SyntheticWorkload, WorkloadSpec


class TestPatterns:
    def test_sequential(self):
        assert synthetic.sequential(5).tolist() == [0, 1, 2, 3, 4]
        assert synthetic.sequential(3, 5).tolist() == [0, 1, 2, 0, 1]

    def test_strided(self):
        assert synthetic.strided(10, 3).tolist() == [0, 3, 6, 9]
        assert synthetic.strided(10, 3, count=5).tolist() == [0, 3, 6, 9, 2]

    def test_random_uniform_bounds(self):
        out = synthetic.random_uniform(100, 1000, rng=0)
        assert out.min() >= 0 and out.max() < 100
        assert np.array_equal(out, synthetic.random_uniform(100, 1000, rng=0))

    def test_hotspot_concentration(self):
        out = synthetic.hotspot(1000, 10_000, hot_fraction=0.1, hot_weight=0.9, rng=0)
        hot = (out < 100).mean()
        assert 0.85 < hot < 0.95

    def test_gather_clustering(self):
        uniform = synthetic.gather_indices(1000, 500, clustering=0.0, rng=0)
        clustered = synthetic.gather_indices(1000, 500, clustering=0.9, rng=0)
        # clustered offsets follow the linspace centers more closely
        centers = np.linspace(0, 999, 500)
        assert np.abs(clustered - centers).mean() < np.abs(uniform - centers).mean()

    def test_pointer_chase_is_permutation_walk(self):
        out = synthetic.pointer_chase(64, 64, rng=0)
        assert out.min() >= 0 and out.max() < 64
        # a permutation walk from 0 visits 64 distinct nodes iff the cycle
        # containing 0 has length >= 64; at minimum there are no immediate
        # repeats
        assert (out[1:] != out[:-1]).all()

    @pytest.mark.parametrize(
        "fn, args",
        [
            (synthetic.sequential, (0,)),
            (synthetic.strided, (10, 0)),
            (synthetic.random_uniform, (0, 5)),
            (synthetic.hotspot, (10, 5, 2.0)),
            (synthetic.gather_indices, (10, 5, 2.0)),
            (synthetic.pointer_chase, (0, 5)),
        ],
    )
    def test_invalid_args(self, fn, args):
        with pytest.raises(ValueError):
            fn(*args)

    @given(st.integers(1, 1000), st.integers(0, 2000))
    @settings(max_examples=50, deadline=None)
    def test_property_all_patterns_in_bounds(self, n, count):
        for out in (
            synthetic.sequential(n, count),
            synthetic.strided(n, 7, count),
            synthetic.random_uniform(n, count, rng=1),
            synthetic.hotspot(n, count, rng=1),
            synthetic.gather_indices(n, count, rng=1),
        ):
            assert len(out) == count
            if count:
                assert out.min() >= 0 and out.max() < n


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ObjectSpec("x", "nowhere", 10, 1, 1)
        with pytest.raises(ConfigurationError):
            ObjectSpec("x", "global", 10, 1, 1, pattern="zigzag")
        with pytest.raises(ConfigurationError):
            ObjectSpec("x", "global", 0, 1, 1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(objects=(ObjectSpec("a", "global", 1, 1, 1),
                                  ObjectSpec("a", "global", 1, 1, 1)))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(objects=(), n_iterations=0)

    def test_executes_with_exact_counts(self):
        spec = WorkloadSpec(
            objects=(
                ObjectSpec("g", "global", 100, reads_per_iter=10, writes_per_iter=5),
                ObjectSpec("h", "heap", 50, reads_per_iter=3, writes_per_iter=2),
                ObjectSpec("s", "stack", 20, reads_per_iter=7, writes_per_iter=1),
            ),
            n_iterations=4,
        )
        rt = InstrumentedRuntime(FanoutProbe([]))
        SyntheticWorkload(spec)(rt)
        assert rt.refs_emitted == (10 + 5 + 3 + 2 + 7 + 1) * 4

    def test_active_iterations(self):
        spec = WorkloadSpec(
            objects=(
                ObjectSpec("g", "global", 100, reads_per_iter=10, writes_per_iter=0,
                           active_iterations=(2,)),
            ),
            n_iterations=4,
        )
        res = NVScavenger().analyze(SyntheticWorkload(spec), n_main_iterations=4)
        m = res.metrics_by_name("g")
        assert m.reads == 10
        assert m.iterations_touched == 1
