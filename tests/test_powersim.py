"""Power simulator: addressing, controller timing, power accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nvram.technology import DRAM_DDR3, MRAM, PCRAM, STTRAM
from repro.powersim.addressing import AddressMapping
from repro.powersim.bankstate import BankArray, BankState, BankStatus
from repro.powersim.config import DeviceConfig, PowerModelConfig, TABLE3_DEVICE
from repro.powersim.controller import MemoryController
from repro.powersim.power import compute_power
from repro.powersim.system import MemorySystem, simulate_power
from repro.trace.record import AccessType, RefBatch


def batch(addrs, write=False, iteration=0):
    return RefBatch.from_access(
        np.asarray(addrs, dtype=np.uint64),
        AccessType.WRITE if write else AccessType.READ,
        iteration=iteration,
    )


class TestDeviceConfig:
    def test_table3_values(self):
        d = TABLE3_DEVICE
        assert d.capacity_bytes == 2 << 30
        assert d.n_ranks == 16 and d.n_banks == 16
        assert d.n_rows == 1024 and d.n_cols == 1024
        assert d.device_width_bits == 4 and d.bus_width_bits == 64
        assert d.devices_per_rank == 16
        assert d.total_banks == 256

    def test_burst_time(self):
        # 64B over a 64-bit bus at 1066 MT/s ~ 7.5ns
        assert 5 < TABLE3_DEVICE.burst_ns < 10

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(n_ranks=3)
        with pytest.raises(ConfigurationError):
            DeviceConfig(bus_width_bits=65)


class TestAddressMapping:
    def test_decode_roundtrip_fields_in_range(self):
        m = AddressMapping(TABLE3_DEVICE)
        addrs = np.arange(0, 1 << 24, 4096, dtype=np.uint64)
        rank, bank, row, col = m.decode_batch(addrs)
        assert (rank < 16).all() and (rank >= 0).all()
        assert (bank < 16).all()
        assert (row < 1024).all()

    def test_consecutive_lines_same_row(self):
        """Open-page-friendly: consecutive lines share a row."""
        m = AddressMapping(TABLE3_DEVICE)
        a = m.decode(0)
        b = m.decode(64)
        assert (a.rank, a.bank, a.row) == (b.rank, b.bank, b.row)
        assert a.col != b.col

    def test_row_crossing_changes_bank(self):
        m = AddressMapping(TABLE3_DEVICE)
        row_bytes = TABLE3_DEVICE.row_bytes
        a = m.decode(0)
        b = m.decode(row_bytes)
        assert (a.rank, a.bank, a.row) != (b.rank, b.bank, b.row)

    def test_flat_bank(self):
        m = AddressMapping(TABLE3_DEVICE)
        fb, row = m.flat_bank_batch(np.array([0], dtype=np.uint64))
        assert fb[0] == m.decode(0).rank * 16 + m.decode(0).bank


class TestBankState:
    def test_scalar_state_machine(self):
        b = BankState()
        assert b.status is BankStatus.PRECHARGED
        b.open(5)
        assert b.status is BankStatus.ROW_OPEN and b.open_row == 5
        b.close()
        assert b.status is BankStatus.PRECHARGED
        assert b.activations == 1 and b.precharges == 1

    def test_scalar_misuse(self):
        from repro.errors import SimulationError

        b = BankState()
        with pytest.raises(SimulationError):
            b.close()
        b.open(1)
        with pytest.raises(SimulationError):
            b.open(2)

    def test_bank_array_view(self):
        arr = BankArray(4)
        arr.open_row[2] = 7
        st = arr.state_of(2)
        assert st.status is BankStatus.ROW_OPEN and st.open_row == 7
        assert arr.state_of(0).status is BankStatus.PRECHARGED


class TestController:
    def test_row_hit_vs_miss_counting(self):
        ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        ctl.process_batch(batch([0, 64, 128]))  # same row after first miss
        assert ctl.stats.row_misses == 1
        assert ctl.stats.row_hits == 2
        assert ctl.stats.reads == 3

    def test_row_conflict_precharges(self):
        ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        row_stride = TABLE3_DEVICE.row_bytes * 256  # same bank, next row
        ctl.process_batch(batch([0, row_stride]))
        assert ctl.stats.row_misses == 2
        assert ctl.stats.precharges == 1

    def test_elapsed_time_increases_with_traffic(self):
        ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        ctl.process_batch(batch(np.arange(100) * 64))
        t1 = ctl.elapsed_ns
        ctl.process_batch(batch(np.arange(100) * 64))
        assert ctl.elapsed_ns > t1

    def test_channel_is_bandwidth_bound(self):
        """Streaming row hits: elapsed ~ N * burst time."""
        ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        n = 500
        ctl.process_batch(batch(np.arange(n) * 64))
        assert ctl.elapsed_ns <= n * TABLE3_DEVICE.burst_ns * 1.5

    def test_activation_counter(self):
        ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        ctl.process_batch(batch([0, 0, 0]))
        assert ctl.activation_count() == 1

    def test_write_to_read_turnaround_slows_channel(self):
        interleaved = []
        for i in range(200):
            interleaved.append(i * 64)
        b_w = batch(interleaved, write=True)
        b_r = batch(interleaved, write=False)
        mix = RefBatch(
            addr=np.stack([b_w.addr, b_r.addr], axis=1).ravel(),
            is_write=np.stack([b_w.is_write, b_r.is_write], axis=1).ravel(),
            size=np.full(400, 64, np.uint8),
            oid=np.full(400, -1, np.int32),
        )
        fast = MemoryController(TABLE3_DEVICE, DRAM_DDR3)  # turnaround 0
        slow = MemoryController(TABLE3_DEVICE, PCRAM)  # turnaround 1.5ns
        fast.process_batch(mix)
        slow.process_batch(mix)
        assert slow.elapsed_ns > fast.elapsed_ns

    def test_dirty_row_close_costs_more_for_pcram(self):
        """A written row's precharge pays (a fraction of) the write latency."""
        row_stride = TABLE3_DEVICE.row_bytes * 256
        seq = [0, row_stride, 0, row_stride]  # ping-pong same bank
        dram = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        pcram = MemoryController(TABLE3_DEVICE, PCRAM)
        dram.process_batch(batch(seq, write=True))
        pcram.process_batch(batch(seq, write=True))
        assert pcram.elapsed_ns > dram.elapsed_ns


class TestPower:
    def run_system(self, tech, n=2000, write_fraction=0.3, seed=0):
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, 1 << 26, n, dtype=np.uint64) * 64
        is_w = rng.random(n) < write_fraction
        b = RefBatch(addr=addrs, is_write=is_w, size=np.full(n, 64, np.uint8),
                     oid=np.full(n, -1, np.int32))
        sys = MemorySystem(tech)
        sys.process_batch(b)
        return sys.report()

    def test_components_nonnegative_and_total(self):
        rep = self.run_system(DRAM_DDR3)
        b = rep.breakdown
        for v in (b.burst_mw, b.activation_mw, b.background_mw, b.refresh_mw, b.io_mw):
            assert v >= 0
        assert b.total_mw == pytest.approx(
            b.burst_mw + b.activation_mw + b.background_mw + b.refresh_mw + b.io_mw
        )

    def test_nvram_refresh_zero(self):
        assert self.run_system(PCRAM).breakdown.refresh_mw == 0.0
        assert self.run_system(DRAM_DDR3).breakdown.refresh_mw > 0.0

    def test_table6_shape_random_trace(self):
        """Even on a random synthetic trace, the Table VI shape holds."""
        reports = {t.name: self.run_system(t) for t in (DRAM_DDR3, PCRAM, STTRAM, MRAM)}
        base = reports["DDR3"].average_power_mw
        norms = {k: v.average_power_mw / base for k, v in reports.items()}
        assert norms["PCRAM"] < norms["STTRAM"] <= norms["MRAM"] + 0.005
        for name in ("PCRAM", "STTRAM", "MRAM"):
            assert 0.60 < norms[name] < 0.80

    def test_zero_elapsed(self):
        bd = compute_power(
            MemoryController(TABLE3_DEVICE, DRAM_DDR3).stats,
            DRAM_DDR3, TABLE3_DEVICE, PowerModelConfig(), 0.0,
        )
        assert bd.total_mw == 0.0

    def test_bandwidth_report(self):
        rep = self.run_system(DRAM_DDR3)
        assert 0 < rep.bandwidth_gbs < 10  # bounded by the 8.5 GB/s bus

    def test_simulate_power_from_file(self, tmp_path):
        from repro.trace.io import write_trace

        path = tmp_path / "trace.npz"
        write_trace(path, [batch(np.arange(50) * 64)])
        rep = simulate_power(path, "pcram")
        assert rep.tech_name == "PCRAM"
        assert rep.average_power_mw > 0

    def test_breakdown_normalization(self):
        a = self.run_system(DRAM_DDR3).breakdown
        b = self.run_system(PCRAM).breakdown
        assert b.normalized_to(a) == pytest.approx(b.total_mw / a.total_mw)
