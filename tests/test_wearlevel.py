"""Start-Gap wear leveling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.nvram.wearlevel import StartGapLeveler, simulate_leveling


class TestStartGap:
    def test_initial_mapping_is_identity(self):
        lev = StartGapLeveler(8)
        assert lev.translate(np.arange(8)).tolist() == list(range(8))

    def test_gap_move_shifts_tail(self):
        lev = StartGapLeveler(8, gap_move_interval=1)
        lev.record_writes(1)  # gap moves from 8 to 7
        phys = lev.translate(np.arange(8))
        # logical 7 now maps to physical 8 (skipping gap at 7)
        assert phys[7] == 8
        assert phys[:7].tolist() == list(range(7))

    def test_full_rotation_advances_start(self):
        n = 4
        lev = StartGapLeveler(n, gap_move_interval=1)
        lev.record_writes(n + 1)  # gap walks 4 -> 0 -> wraps to 4, start+1
        assert lev.start == 1
        assert lev.gap == n
        phys = lev.translate(np.arange(n))
        assert phys.tolist() == [1, 2, 3, 0]

    def test_mapping_always_bijective(self):
        lev = StartGapLeveler(16, gap_move_interval=1)
        for _ in range(100):
            lev.record_writes(1)
            lev.check_mapping_is_bijective()

    def test_translate_out_of_range(self):
        lev = StartGapLeveler(8)
        with pytest.raises(ConfigurationError):
            lev.translate(np.array([8]))
        with pytest.raises(ConfigurationError):
            lev.translate(np.array([-1]))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            StartGapLeveler(0)
        with pytest.raises(ConfigurationError):
            StartGapLeveler(8, gap_move_interval=0)

    @given(st.integers(2, 64), st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_property_bijective_after_any_moves(self, n, moves):
        lev = StartGapLeveler(n, gap_move_interval=1)
        lev.record_writes(moves)
        lev.check_mapping_is_bijective()

    def test_eventually_every_logical_visits_many_physical(self):
        """The point of Start-Gap: a hot logical line's physical location
        changes over time."""
        lev = StartGapLeveler(8, gap_move_interval=1)
        seen = set()
        for _ in range(9 * 9):
            seen.add(int(lev.translate(np.array([3]))[0]))
            lev.record_writes(1)
        assert len(seen) >= 8


class TestSimulateLeveling:
    def test_hotspot_flattened(self):
        """All writes to one line: raw wear is total count; leveled wear
        drops by roughly interval/n (the rotation spreads it)."""
        writes = np.zeros(10_000, dtype=np.int64)
        rep = simulate_leveling(writes, n_lines=64, gap_move_interval=16)
        assert rep.raw_max_wear == 10_000
        assert rep.leveled_max_wear < rep.raw_max_wear
        assert rep.improvement > 5.0
        assert rep.leveled_imbalance < rep.raw_imbalance

    def test_uniform_stream_not_hurt(self):
        """Already-uniform traffic must not get dramatically worse."""
        rng = np.random.default_rng(0)
        writes = rng.integers(0, 64, 20_000, dtype=np.int64)
        rep = simulate_leveling(writes, n_lines=64, gap_move_interval=16)
        assert rep.leveled_max_wear <= rep.raw_max_wear * 1.5

    def test_gap_moves_counted(self):
        writes = np.zeros(1000, dtype=np.int64)
        rep = simulate_leveling(writes, n_lines=16, gap_move_interval=100)
        assert rep.gap_moves == 10
