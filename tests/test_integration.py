"""Cross-module integration tests: the full pipelines of Figure 1.

instrumented program -> analyzers -> classification -> placement
instrumented program -> cache filter -> trace file -> power simulator
instrumented program -> cache filter -> counts -> performance model
"""

import pytest

from repro.hybrid.pagemap import MemoryPool, PageMap
from repro.hybrid.migration import DynamicMigrator
from repro.hybrid.placement import StaticPlacer
from repro.instrument import InstrumentedRuntime, SamplingProbe
from repro.instrument.api import FanoutProbe, Probe
from repro.nvram import PCRAM, STTRAM
from repro.perfsim import PerformanceSimulator
from repro.powersim import simulate_power
from repro.scavenger import NVScavenger
from repro.trace.io import write_trace
from tests.conftest import make_app


def test_trace_file_roundtrip_through_power_sim(tmp_path, analyzed_apps):
    """The paper's exact flow: NV-SCAVENGER trace files feed DRAMSim."""
    _, _, probe, _ = analyzed_apps["gtc"]
    path = tmp_path / "gtc_mem.npz"
    write_trace(path, probe.memory_trace)
    rep_file = simulate_power(path, PCRAM)
    rep_mem = simulate_power(probe.memory_trace, PCRAM)
    assert rep_file.average_power_mw == pytest.approx(rep_mem.average_power_mw)
    assert rep_file.stats.accesses == rep_mem.stats.accesses


def test_classification_to_placement_to_pagemap(analyzed_apps):
    """Analysis drives placement; placement covers the whole object set."""
    _, res, _, _ = analyzed_apps["cam"]
    pm = PageMap()
    plan = StaticPlacer(STTRAM).place(res.classified, page_map=pm)
    assert plan.total_bytes == sum(m.size for m in res.object_metrics)
    # every NVRAM object's base address is NVRAM-resident in the page map
    by_oid = {m.oid: m for m in res.object_metrics}
    for oid in plan.nvram_oids:
        assert pm.pool_of(by_oid[oid].base) is MemoryPool.NVRAM


def test_migration_on_live_trace(analyzed_apps):
    """The dynamic migrator consumes the real reference stream."""
    _, _, probe, _ = analyzed_apps["gtc"]
    pm = PageMap()
    mig = DynamicMigrator(pm, write_hot_threshold=32, read_popular_threshold=64)
    for b in probe.memory_trace[:50]:
        mig.observe(b)
    mig.end_epoch()
    assert mig.stats.epochs == 1
    # GTC's write-heavy pages produce DRAM migrations
    assert mig.stats.to_dram + mig.stats.to_nvram > 0


def test_perf_counts_consistent_with_cache_stats(analyzed_apps):
    _, _, probe, instructions = analyzed_apps["s3d"]
    sim = PerformanceSimulator()
    counts = sim.counts_from_run(instructions, probe)
    stats = probe.stats()
    assert counts.l1_misses == stats.levels["L1D"].misses
    assert counts.llc_misses == stats.levels["L2"].misses
    assert 1.0 <= counts.mlp <= 64.0


def test_sampling_underestimates_objects():
    """Ablation (paper §III-D): periodic sampling loses objects entirely."""
    def run(sampled):
        captured = {}

        def build_program(rt):
            make_app("cam", refs=4000, iters=3)(rt)

        if sampled:
            # sample 1% in 100-ref windows
            sc = NVScavenger()
            fan_inner = FanoutProbe([])
            # construct manually: SamplingProbe wraps the analyzer fanout
            from repro.scavenger.global_analysis import GlobalAnalyzer
            from repro.scavenger.heap_analysis import HeapAnalyzer

            outer = FanoutProbe([])
            rt = InstrumentedRuntime(outer)
            heap = HeapAnalyzer(rt.space.layout.heap_segment)
            glob = GlobalAnalyzer(rt.space.layout.global_segment)
            inner = FanoutProbe([heap, glob])
            sampler = SamplingProbe(inner, period_refs=2000, sample_refs=20)
            outer.add(sampler)
            build_program(rt)
            rt.finish()
            reads_g, writes_g = glob.stats.totals_per_object()
            reads_h, writes_h = heap.stats.totals_per_object()
            observed = int(((reads_g + writes_g) > 0).sum())
            observed += int(((reads_h + writes_h) > 0).sum())
            registered = len(glob.objects) + len(heap.objects)
            return observed, registered
        res = NVScavenger().analyze(lambda rt: build_program(rt), n_main_iterations=3)
        observed = sum(1 for m in res.object_metrics if m.refs > 0)
        return observed, len(res.object_metrics)

    full_observed, full_total = run(sampled=False)
    sampled_observed, sampled_total = run(sampled=True)
    assert sampled_total == full_total  # allocation events always seen
    assert sampled_observed < full_observed  # access info lost


def test_scaling_invariance_of_ratios():
    """Aggregate r/w ratios are scale-invariant (footprint-only knob)."""
    r_small = NVScavenger().analyze(make_app("s3d", refs=4000, iters=3),
                                    n_main_iterations=3)
    big = make_app("s3d", refs=4000, iters=3)
    big.scale = 1.0 / 64.0
    r_big = NVScavenger().analyze(big, n_main_iterations=3)
    assert r_small.stack_summary.rw_ratio() == pytest.approx(
        r_big.stack_summary.rw_ratio(), rel=0.02
    )


def test_probe_counts_agree_across_consumers(analyzed_apps):
    """Every probe on the fanout sees the identical reference stream."""
    class CountProbe(Probe):
        def __init__(self):
            self.n = 0

        def on_batch(self, b):
            self.n += len(b)

    c1, c2 = CountProbe(), CountProbe()
    rt = InstrumentedRuntime(FanoutProbe([c1, c2]))
    make_app("nek5000", refs=3000, iters=2)(rt)
    rt.finish()
    assert c1.n == c2.n == rt.refs_emitted


def test_cli_analyze_smoke(capsys):
    from repro.cli import main

    rc = main(["analyze", "gtc", "--refs", "2000", "--iterations", "2",
               "--scale", "0.004"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "stack" in out
    assert "classification" in out


def test_cli_power_smoke(capsys):
    from repro.cli import main

    rc = main(["power", "s3d", "--refs", "2000", "--iterations", "2",
               "--scale", "0.004"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "PCRAM" in out


def test_cli_perf_smoke(capsys):
    from repro.cli import main

    rc = main(["perf", "cam", "--refs", "2000", "--iterations", "2",
               "--scale", "0.004"])
    assert rc == 0
    assert "MLP" in capsys.readouterr().out


def test_cli_experiments_smoke(capsys):
    from repro.cli import main

    rc = main(["experiments", "table5", "--refs", "2000", "--scale", "0.004"])
    assert rc == 0
    assert "Stack data analysis" in capsys.readouterr().out
