"""Chaos I/O fault injection against the artifact cache.

The contract under test:

* **crash-point sweep** — for a simulated crash at *every* filesystem
  operation of a recording, a fresh cache either misses or serves a
  fully CRC-valid artifact (never a torn one), and a later engine
  transparently re-records and replays bit-identically;
* **torn writes / ENOSPC / EIO** — every error-return path of the write
  pipeline aborts cleanly, leaving no committed-looking artifact;
* **cross-process locking** — two recorders of one key serialize on the
  per-key flock; the loser gets the winner's committed artifact, never a
  clobbered directory;
* **self-healing replay** — a corrupt committed artifact is quarantined
  and re-recorded (bounded retries), with the ``quarantined`` /
  ``rerecorded`` counters surfacing it;
* **corruption is loud** — bit-flipped or truncated chunk files (and a
  doctored chunk index) raise :class:`~repro.errors.TraceError` from
  ``verify``/``batches``, and ``Artifact.meta``/``events`` wrap racy
  deletion the same way.
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro.cachesim import MemoryTraceProbe
from repro.engine import (
    ArtifactCache,
    ChaosFS,
    IOFault,
    PipelineEngine,
    RunSpec,
    SimulatedCrash,
)
from repro.engine.chaos import flip_file_bit
from repro.errors import CacheLockError, FaultInjectionError, TraceError
from repro.resilience.faults import SCENARIOS, get_scenario

SPEC = dict(refs_per_iteration=1_000, scale=1.0 / 256.0, n_iterations=2, seed=3)


def make_spec(app="gtc", **over):
    return RunSpec(app=app, **{**SPEC, **over})


def addr_stream(probe: MemoryTraceProbe) -> np.ndarray:
    if not probe.memory_trace:
        return np.empty(0, np.uint64)
    return np.concatenate([b.addr for b in probe.memory_trace])


@pytest.fixture(scope="module")
def reference_trace(tmp_path_factory):
    """The pristine replayed address stream every recovery must match."""
    eng = PipelineEngine(root=tmp_path_factory.mktemp("ref-cache"))
    probe = MemoryTraceProbe()
    eng.replay(make_spec(), probe)
    return addr_stream(probe)


# ----------------------------------------------------------------------
class TestIOFaultConfig:
    def test_kind_validated(self):
        with pytest.raises(FaultInjectionError):
            IOFault("meteor", op="write:*")

    def test_needs_exactly_one_selector(self):
        with pytest.raises(FaultInjectionError):
            IOFault("eio")
        with pytest.raises(FaultInjectionError):
            IOFault("eio", op="write:*", index=3)

    def test_torn_needs_offset(self):
        with pytest.raises(FaultInjectionError):
            IOFault("torn", op="write:refs.npz.tmp")

    def test_io_scenarios_share_the_registry(self):
        assert {"io-torn-refs", "io-enospc-meta", "io-crash-commit",
                "io-bitflip-refs"} <= set(SCENARIOS)
        scen = get_scenario("io-crash-commit")
        assert scen.faults[0].kind == "crash"

    def test_non_io_scenario_rejected(self):
        with pytest.raises(FaultInjectionError):
            ChaosFS(scenario="crashes")


# ----------------------------------------------------------------------
class TestCrashPointSweep:
    def test_every_crash_point_leaves_none_or_valid(self, tmp_path,
                                                    reference_trace):
        """Kill the recording at every filesystem operation: the cache
        must never serve a partial artifact, and recovery must replay
        bit-identically to the pristine run."""
        spec = make_spec()
        # enumerate the op sequence of one clean recording
        probe_fs = ChaosFS()
        PipelineEngine(cache=ArtifactCache(tmp_path / "probe",
                                           fs=probe_fs)).record(spec)
        ops = list(probe_fs.ops)
        assert any(o.startswith("replace:meta.json") for o in ops)
        assert ops[-1].startswith("fsync_dir:")

        for i, label in enumerate(ops):
            root = tmp_path / f"crash-{i}"
            fs = ChaosFS(faults=[IOFault("crash", index=i)])
            eng = PipelineEngine(cache=ArtifactCache(root, fs=fs))
            with pytest.raises(SimulatedCrash):
                eng.record(spec)
            assert fs.dead, f"crash point {i} ({label}) never fired"
            # a fresh process: None or a fully verifiable artifact
            clean = ArtifactCache(root)
            art = clean.get(spec)
            if art is not None:
                assert art.verify() > 0
            # recovery re-records (if needed) and replays bit-identically
            eng2 = PipelineEngine(cache=clean)
            probe = MemoryTraceProbe()
            eng2.replay(spec, probe)
            np.testing.assert_array_equal(addr_stream(probe), reference_trace)

    def test_torn_writes_at_every_file(self, tmp_path, reference_trace):
        """Torn tmp-file writes (machine dies mid-write) never publish."""
        spec = make_spec()
        for i, name in enumerate(
                ("chunk-000000.bin", "index.bin",
                 "events.json.tmp", "meta.json.tmp")):
            root = tmp_path / f"torn-{i}"
            fs = ChaosFS(faults=[IOFault("torn", op=f"write:{name}",
                                         offset=64)])
            eng = PipelineEngine(cache=ArtifactCache(root, fs=fs))
            with pytest.raises(SimulatedCrash):
                eng.record(spec)
            clean = ArtifactCache(root)
            art = clean.get(spec)
            if art is not None:
                assert art.verify() > 0
            probe = MemoryTraceProbe()
            PipelineEngine(cache=clean).replay(spec, probe)
            np.testing.assert_array_equal(addr_stream(probe), reference_trace)


# ----------------------------------------------------------------------
class TestErrorReturns:
    @pytest.mark.parametrize("scenario", ["io-enospc-meta", "io-eio-events",
                                          "io-torn-refs"])
    def test_write_errors_abort_cleanly(self, tmp_path, scenario):
        spec = make_spec()
        fs = ChaosFS(scenario=scenario)
        eng = PipelineEngine(cache=ArtifactCache(tmp_path, fs=fs))
        with pytest.raises(OSError):
            eng.record(spec)
        assert fs.fired, "the scenario's fault never triggered"
        assert ArtifactCache(tmp_path).get(spec) is None
        assert eng.stats.app_runs == 0

    def test_enospc_then_clean_record_succeeds(self, tmp_path):
        """Transient disk pressure: the same engine records fine after."""
        spec = make_spec()
        fs = ChaosFS(faults=[IOFault("enospc", op="write:meta.json.tmp")])
        cache = ArtifactCache(tmp_path, fs=fs)
        eng = PipelineEngine(cache=cache)
        with pytest.raises(OSError):
            eng.record(spec)
        art = eng.record(spec)  # the one-shot fault has been consumed
        assert art.verify() > 0

    def test_abort_poisons_writer(self, tmp_path):
        """A stray writer.close() after abort cannot resurrect files."""
        spec = make_spec()
        cache = ArtifactCache(tmp_path)
        pending = cache.begin(spec)
        pending.writer.append  # touch: the writer exists and is open
        pending.abort()
        pending.writer.close()  # must be inert after discard()
        assert not os.path.exists(
            os.path.join(pending.directory, "refs.tv3"))
        assert not os.path.exists(
            os.path.join(pending.directory, "refs.tv3.tmp"))
        with pytest.raises(TraceError):
            pending.writer.append(None)


# ----------------------------------------------------------------------
class TestCrossProcessLocking:
    def test_second_recorder_times_out_while_first_holds(self, tmp_path):
        spec = make_spec(app="s3d")
        first = ArtifactCache(tmp_path, lock_timeout=5.0)
        pending = first.begin(spec)
        second = ArtifactCache(tmp_path, lock_timeout=0.05)
        with pytest.raises(CacheLockError):
            second.begin(spec)
        pending.abort()
        # once released, the second cache can begin (and must clean up)
        handle = second.begin(spec)
        handle.abort()

    def test_loser_gets_winners_artifact(self, tmp_path):
        """If the artifact commits while a peer waits on the lock, the
        peer's begin() returns the committed artifact, not a pending one
        that would clobber it."""
        spec = make_spec(app="s3d")
        cache = ArtifactCache(tmp_path)
        eng = PipelineEngine(cache=cache)
        art = eng.record(spec)
        peer = ArtifactCache(tmp_path)
        handle = peer.begin(spec)
        assert not hasattr(handle, "writer"), "begin() clobbered a commit"
        assert handle.key == art.key
        assert handle.verify() > 0
        # and the engine counts it as a cache hit
        eng2 = PipelineEngine(cache=peer)
        eng2.record(spec)
        assert eng2.stats.app_runs == 0
        assert eng2.stats.cache_hits == 1

    def test_lock_released_on_commit(self, tmp_path):
        spec = make_spec()
        cache = ArtifactCache(tmp_path, lock_timeout=0.05)
        PipelineEngine(cache=cache).record(spec)
        lock = cache.lock_for(spec.key)
        assert lock.try_acquire()
        lock.release()

    def test_failed_recording_releases_lock(self, tmp_path):
        from repro.errors import ConfigurationError

        spec = make_spec(app="notanapp")
        cache = ArtifactCache(tmp_path, lock_timeout=0.05)
        with pytest.raises(ConfigurationError):
            PipelineEngine(cache=cache).record(spec)
        lock = cache.lock_for(spec.key)
        assert lock.try_acquire()
        lock.release()


# ----------------------------------------------------------------------
class TestSelfHealingReplay:
    def test_bitflip_quarantines_and_rerecords(self, tmp_path,
                                               reference_trace):
        spec = make_spec()
        root = tmp_path / "cache"
        eng = PipelineEngine(root=root)
        art = eng.record(spec)
        flip_file_bit(art.refs_path, seed=7)
        healer = PipelineEngine(cache=ArtifactCache(root))
        probe = MemoryTraceProbe()
        healer.replay(spec, probe)
        assert healer.stats.quarantined == 1
        assert healer.stats.rerecorded == 1
        np.testing.assert_array_equal(addr_stream(probe), reference_trace)
        # the corrupt copy is kept aside for forensics
        quarantined = [d for d in os.listdir(os.path.dirname(art.directory))
                       if ".quarantine" in d]
        assert len(quarantined) == 1
        # the healed artifact is scrubbed once per engine: a second
        # replay goes straight through
        before = healer.stats.snapshot()
        healer.replay(spec, MemoryTraceProbe())
        assert healer.stats.delta(before)["quarantined"] == 0

    def test_events_corruption_detected_and_healed(self, tmp_path,
                                                   reference_trace):
        spec = make_spec()
        root = tmp_path / "cache"
        eng = PipelineEngine(root=root)
        art = eng.record(spec)
        flip_file_bit(art.events_path, seed=5)
        healer = PipelineEngine(cache=ArtifactCache(root))
        probe = MemoryTraceProbe()
        healer.replay(spec, probe)
        assert healer.stats.quarantined == 1
        np.testing.assert_array_equal(addr_stream(probe), reference_trace)

    def test_persistent_corruption_gives_up_loudly(self, tmp_path):
        """Bad media corrupting every re-record: bounded retries, then a
        TraceError naming the spec — never silent bad data."""
        spec = make_spec()
        fs = ChaosFS(scenario="io-bitflip-refs-persistent")
        cache = ArtifactCache(tmp_path, fs=fs)
        eng = PipelineEngine(cache=cache, max_rerecord_attempts=1,
                             rerecord_backoff_s=0.0)
        with pytest.raises(TraceError, match="re-record"):
            eng.replay(spec, MemoryTraceProbe())
        assert eng.stats.quarantined == 2  # initial + the retried copy
        assert eng.stats.rerecorded == 1

    def test_self_heal_off_raises_directly(self, tmp_path):
        spec = make_spec()
        root = tmp_path / "cache"
        art = PipelineEngine(root=root).record(spec)
        flip_file_bit(art.refs_path, seed=7)
        eng = PipelineEngine(cache=ArtifactCache(root), self_heal=False)
        with pytest.raises(TraceError):
            eng.replay(spec, MemoryTraceProbe())
        assert eng.stats.quarantined == 0

    def test_counters_surface_in_stats_table(self, tmp_path):
        eng = PipelineEngine(root=tmp_path)
        assert "quarantined" in eng.stats.table()
        snap = eng.stats.snapshot()
        assert snap["quarantined"] == 0 and snap["rerecorded"] == 0


# ----------------------------------------------------------------------
class TestCorruptionIsLoud:
    """Satellite: verify/batches against flipped and truncated traces."""

    @pytest.fixture()
    def committed(self, tmp_path):
        spec = make_spec()
        cache = ArtifactCache(tmp_path)
        PipelineEngine(cache=cache).record(spec)
        return spec, cache

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_single_bitflip_raises(self, committed, seed):
        spec, cache = committed
        art = cache.get(spec)
        flip_file_bit(art.refs_path, seed=seed)
        with pytest.raises(TraceError):
            cache.verify(spec)
        with pytest.raises(TraceError):
            list(art.batches())

    @pytest.mark.parametrize("keep", [0, 10, 1000])
    def test_truncated_refs_raises(self, committed, keep):
        """A truncated chunk file is caught before any decode (the
        mapped size no longer matches the index's stored length)."""
        spec, cache = committed
        art = cache.get(spec)
        chunk = os.path.join(art.refs_path, "chunk-000000.bin")
        data = open(chunk, "rb").read()
        assert keep < len(data)
        with open(chunk, "wb") as fh:
            fh.write(data[:keep])
        with pytest.raises(TraceError):
            cache.verify(spec)
        with pytest.raises(TraceError):
            list(art.batches())

    @pytest.mark.parametrize("keep", [0, 10, 63, 100])
    def test_truncated_index_raises(self, committed, keep):
        """A torn chunk index never parses as a shorter-but-valid one."""
        spec, cache = committed
        art = cache.get(spec)
        index = os.path.join(art.refs_path, "index.bin")
        data = open(index, "rb").read()
        assert keep < len(data)
        with open(index, "wb") as fh:
            fh.write(data[:keep])
        with pytest.raises(TraceError):
            cache.verify(spec)

    def test_missing_batches_vs_meta_detected(self, committed):
        """A trace that silently lost whole batches fails the meta
        cross-check even though every remaining chunk CRC passes."""
        from repro.trace.chunked import ChunkedTraceReader, _pack_index

        spec, cache = committed
        art = cache.get(spec)
        with ChunkedTraceReader(art.refs_path) as reader:
            records = list(reader.records)
            total = reader.total_refs
        assert len(records) > 1
        dropped = records.pop()
        # a self-consistent index (valid CRCs) that simply lost a chunk
        blob = _pack_index(records, total - dropped.n_refs)
        with open(os.path.join(art.refs_path, "index.bin"), "wb") as fh:
            fh.write(blob)
        with pytest.raises(TraceError, match="declares"):
            art.verify()

    def test_meta_read_errors_wrapped(self, committed):
        spec, cache = committed
        art = cache.get(spec)
        # corrupt JSON: parse failure carries the key and the path
        with open(art.meta_path, "w") as fh:
            fh.write("{not json")
        fresh = cache.get(spec)
        with pytest.raises(TraceError) as ei:
            fresh.meta
        assert ei.value.key == spec.key
        assert ei.value.path == art.meta_path
        # racy deletion of the whole directory after get()
        handle = cache.get(spec)
        shutil.rmtree(handle.directory)
        with pytest.raises(TraceError):
            handle.meta
        with pytest.raises(TraceError):
            handle.events()
        # and get() itself tolerates the vanished directory
        assert cache.get(spec) is None

    def test_replay_never_delivers_bad_batches_to_probes(self, committed):
        """The probe set sees either the full valid stream or nothing —
        quarantine happens before delivery, not mid-stream."""
        spec, cache = committed
        art = cache.get(spec)
        flip_file_bit(art.refs_path, seed=11)
        eng = PipelineEngine(cache=cache, max_rerecord_attempts=0,
                             rerecord_backoff_s=0.0)
        probe = MemoryTraceProbe()
        with pytest.raises(TraceError):
            eng.replay(spec, probe)
        assert probe.memory_trace == []


# ----------------------------------------------------------------------
class TestDurabilityDetails:
    def test_commit_fsyncs_directory(self, tmp_path):
        spec = make_spec()
        fs = ChaosFS()
        PipelineEngine(cache=ArtifactCache(tmp_path, fs=fs)).record(spec)
        assert fs.ops[-1].startswith("fsync_dir:"), fs.ops

    def test_meta_is_written_last(self, tmp_path):
        spec = make_spec()
        fs = ChaosFS()
        PipelineEngine(cache=ArtifactCache(tmp_path, fs=fs)).record(spec)
        publishes = [o for o in fs.ops if o.startswith("replace:")]
        assert publishes[-1] == "replace:meta.json"

    def test_quarantine_log_event_is_structured(self, tmp_path, caplog):
        spec = make_spec()
        cache = ArtifactCache(tmp_path)
        PipelineEngine(cache=cache).record(spec)
        with caplog.at_level("WARNING", logger="repro.engine.cache"):
            cache.quarantine(spec.key, reason="test scrub")
        payloads = [json.loads(r.getMessage().split(": ", 1)[1])
                    for r in caplog.records]
        assert any(p["event"] == "artifact.quarantined"
                   and p["key"] == spec.key for p in payloads)
