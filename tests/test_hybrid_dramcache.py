"""Hand-computed scenarios for :mod:`repro.hybrid.dramcache`.

A two-line direct-mapped DRAM cache is small enough to trace every
access on paper: each expectation below states the hit/fill/writeback
sequence it encodes, and latency/energy are asserted against the exact
closed-form sums, not against ratios that could drift silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hybrid.dramcache import DRAMCacheModel, HorizontalModel
from repro.hybrid.pagemap import MemoryPool, PageMap
from repro.nvram.technology import DRAM_DDR3, PCRAM
from repro.trace.record import AccessType, RefBatch
from repro.util.units import GiB

E_DRAM = DRAM_DDR3.read_power_mw * 10.0 / 1e3   # 0.6 nJ per access
E_NV_READ = PCRAM.read_power_mw * 10.0 / 1e3    # 0.6 nJ per fill
E_NV_WRITE = PCRAM.write_power_mw * 10.0 / 1e3  # 2.25 nJ per writeback


def batch(addrs, write=False):
    return RefBatch.from_access(
        np.asarray(addrs, dtype=np.uint64),
        AccessType.WRITE if write else AccessType.READ)


def tiny_cache():
    """capacity 128 B, 64 B lines, direct-mapped -> 2 sets of 1 line."""
    model = DRAMCacheModel(PCRAM, 128, line_bytes=64, associativity=1)
    assert model.capacity == 128
    return model


class TestDRAMCacheByHand:
    def test_hit_fill_and_conflict(self):
        # [0, 0, 64, 4096]: line 0 misses (fill), hits, line 1 misses
        # (fill), line 64 conflicts with clean line 0 (fill, no writeback)
        res = tiny_cache().run([batch([0, 0, 64, 4096])])
        assert res.accesses == 4
        assert res.dram_hits == 1
        assert res.nvram_fills == 3
        assert res.nvram_writebacks == 0
        assert res.hit_rate == pytest.approx(0.25)
        # every access probes DRAM (10 ns); each fill adds a 20 ns NVM read
        assert res.total_latency_ns == pytest.approx(4 * 10.0 + 3 * 20.0)
        standby = 180.0 * 128 / GiB * res.total_latency_ns / 1e3
        assert res.energy_nj == pytest.approx(
            4 * E_DRAM + 3 * E_NV_READ + standby)

    def test_dirty_victim_writes_back(self):
        # write line 0 (fill, dirtied), then read line 64 in the same set:
        # the dirty victim is written back to NVRAM off the critical path
        res = tiny_cache().run([batch([0], write=True), batch([4096])])
        assert res.accesses == 2
        assert res.dram_hits == 0
        assert res.nvram_fills == 2
        assert res.nvram_writebacks == 1
        assert res.nvram_traffic == 3
        # writebacks cost energy but no latency
        assert res.total_latency_ns == pytest.approx(2 * 10.0 + 2 * 20.0)
        standby = 180.0 * 128 / GiB * res.total_latency_ns / 1e3
        assert res.energy_nj == pytest.approx(
            2 * E_DRAM + 2 * E_NV_READ + 1 * E_NV_WRITE + standby)

    def test_empty_trace(self):
        res = tiny_cache().run([])
        assert res.accesses == 0
        assert res.hit_rate == 0.0
        assert res.avg_latency_ns == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            DRAMCacheModel(PCRAM, 0)


class TestHorizontalByHand:
    def test_split_accounting(self):
        pm = PageMap(page_bytes=4096)
        pm.assign_range(4096, 4096, MemoryPool.NVRAM)  # page 1 only
        model = HorizontalModel(PCRAM, pm)
        # reads: one DRAM (0x0), one NVM (0x1000); writes: two NVM
        trace = [batch([0x0, 0x1000]), batch([0x1000, 0x1040], write=True)]
        res = model.run(trace)
        assert res.accesses == 4
        assert res.nvram_accesses == 3
        # NVM read pays the 20 ns array; posted NVM writes and DRAM pay 10 ns
        assert res.total_latency_ns == pytest.approx(20.0 + 2 * 10.0 + 10.0)
        # no DRAM-assigned pages -> zero standby by default
        assert res.energy_nj == pytest.approx(
            1 * E_NV_READ + 2 * E_NV_WRITE + 1 * E_DRAM)

    def test_explicit_dram_capacity_pays_standby(self):
        pm = PageMap(page_bytes=4096)
        model = HorizontalModel(PCRAM, pm, dram_capacity_bytes=GiB)
        res = model.run([batch([0x0])])  # unmapped -> DRAM, 10 ns
        standby = 180.0 * res.total_latency_ns / 1e3  # 180 mW over 10 ns
        assert res.energy_nj == pytest.approx(E_DRAM + standby)

    def test_poor_locality_favors_horizontal(self):
        # the paper's §II claim: with poor locality the DRAM cache's
        # probe+fill amplification loses to side-by-side placement
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 22, size=4000, dtype=np.uint64)
        trace = [batch(addrs)]
        hier = DRAMCacheModel(PCRAM, 4096).run(trace)
        pm = PageMap()
        pm.assign_range(0, 1 << 22, MemoryPool.NVRAM)
        horiz = HorizontalModel(PCRAM, pm).run(trace)
        assert hier.hit_rate < 0.5
        assert hier.avg_latency_ns > horiz.avg_latency_ns
