"""Distributed queue transport: leases, fencing, zombies, adaptive jobs.

The contract under test (PR 8's tentpole):

* claims are exclusive per epoch (``O_EXCL``) and validated against the
  durable fence even when the claim races a revocation;
* revoking a lease bumps the fence *before* the task is republished, so
  a holder that wakes up after reassignment — the SIGSTOP zombie — is
  refused at every write path: lock acquisition, artifact commit,
  result publish. The winner's committed artifact survives the zombie's
  thaw bit-for-bit;
* the queue transport returns results bit-identical to a sequential
  ``jobs=1`` run;
* ``engine gc`` never evicts a run directory whose queue shows live
  lease heartbeats (the fence files in there are load-bearing);
* ``--jobs adaptive`` picks the pool size from journaled history and
  degrades to sequential where parallelism demonstrably lost.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import time
from dataclasses import asdict

import pytest

from repro.apps import APPLICATIONS
from repro.engine.artifacts import QUEUE_DIR, QUEUE_LEASES_DIR, ArtifactCache
from repro.engine.locks import FencingToken, KeyLock, read_fence, write_fence
from repro.engine.spec import RunSpec
from repro.errors import FencedOutError, QueueError
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.sched.adaptive import adaptive_jobs, run_history
from repro.sched.graph import (
    EXPERIMENT_PREFIX,
    ExperimentTask,
    RecordTask,
    TaskGraph,
)
from repro.sched.journal import RunJournal
from repro.sched.queue import (
    EXIT_FENCED,
    QueueCoordinator,
    QueueWorker,
    WorkQueue,
    safe_task_id,
)
from repro.sched.suite import run_suite_parallel
from repro.sched.workers import WorkerConfig
from tests.test_sched import FAST, make_ctx

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="queue tests exercise the fork start method",
)


# ----------------------------------------------------------------------
class TestFencePrimitives:
    def test_missing_fence_accepts_every_epoch(self, tmp_path):
        assert read_fence(str(tmp_path / "fence")) == 0

    def test_write_fence_is_monotonic(self, tmp_path):
        path = str(tmp_path / "fence")
        write_fence(path, 3)
        assert read_fence(path) == 3
        write_fence(path, 2)  # never moves backwards
        assert read_fence(path) == 3
        write_fence(path, 7)
        assert read_fence(path) == 7

    def test_torn_fence_fails_safe_and_is_repairable(self, tmp_path):
        path = str(tmp_path / "fence")
        with open(path, "w") as fh:
            fh.write("not-an-epoch")
        # garbage reads as maximally restrictive: no stale holder slips
        assert read_fence(path) >= (1 << 62)
        assert not FencingToken(path=path, epoch=10**9).valid()
        # rewriting the fence is the repair
        write_fence(path, 5)
        assert read_fence(path) == 5

    def test_token_check_raises_once_fence_moves(self, tmp_path):
        path = str(tmp_path / "fence")
        token = FencingToken(path=path, epoch=2, owner="w1")
        write_fence(path, 2)
        token.check("still valid")  # epoch == fence: fine
        write_fence(path, 3)
        assert not token.valid()
        with pytest.raises(FencedOutError) as exc:
            token.check("commit")
        assert exc.value.epoch == 2
        assert exc.value.current == 3

    def test_keylock_refuses_stale_token(self, tmp_path):
        fence = str(tmp_path / "fence")
        write_fence(fence, 5)
        stale = FencingToken(path=fence, epoch=4)
        lock = KeyLock(str(tmp_path / "k.lock"), fence=stale)
        with pytest.raises(FencedOutError):
            lock.acquire(timeout=1.0)
        assert not lock.held
        # the refused acquire released the flock: a valid holder gets it
        fresh = KeyLock(str(tmp_path / "k.lock"),
                        fence=FencingToken(path=fence, epoch=5))
        with fresh:
            assert fresh.held


class TestSafeTaskId:
    def test_filesystem_safe_and_collision_free(self):
        a = safe_task_id("record:cam")
        b = safe_task_id("record_cam")  # sanitizes to the same stem
        assert a != b
        for sid in (a, b):
            assert "/" not in sid and ":" not in sid
        assert safe_task_id("record:cam") == a  # deterministic


# ----------------------------------------------------------------------
def _queue(tmp_path) -> WorkQueue:
    q = WorkQueue(str(tmp_path / "cache"), "r1")
    q.init_dirs()
    return q


class TestWorkQueueClaims:
    def test_claim_is_exclusive_per_epoch(self, tmp_path):
        q = _queue(tmp_path)
        q.publish_ready("record:cam", epoch=1, attempt=0, seed_offset=0)
        (entry,) = q.ready_entries()
        lease = q.try_claim(entry, "w1")
        assert lease is not None and lease["worker_id"] == "w1"
        assert q.try_claim(entry, "w2") is None

    def test_claim_refuses_fenced_epoch(self, tmp_path):
        q = _queue(tmp_path)
        q.publish_ready("record:cam", epoch=1, attempt=0, seed_offset=0)
        write_fence(q.fence_path("record:cam"), 2)  # revoked before claim
        (entry,) = q.ready_entries()
        assert q.try_claim(entry, "w1") is None
        assert not os.path.exists(q.lease_path("record:cam", 1))

    def test_claim_racing_revocation_self_cancels(self, tmp_path, monkeypatch):
        # the fence moves between the pre-check and the O_EXCL create:
        # the claim must notice post-create and withdraw its lease
        import repro.sched.queue as qmod

        q = _queue(tmp_path)
        q.publish_ready("record:cam", epoch=1, attempt=0, seed_offset=0)
        (entry,) = q.ready_entries()
        reads = iter([0, 2])  # pre-check passes, post-check sees the bump
        monkeypatch.setattr(qmod, "read_fence", lambda _p: next(reads))
        assert q.try_claim(entry, "w1") is None
        assert not os.path.exists(q.lease_path("record:cam", 1))

    def test_release_and_heartbeat_touch_only_own_epoch(self, tmp_path):
        q = _queue(tmp_path)
        q.publish_ready("record:cam", epoch=1, attempt=0, seed_offset=0)
        (entry,) = q.ready_entries()
        lease = q.try_claim(entry, "w1")
        old_t = lease["t"]
        time.sleep(0.02)
        q.heartbeat(lease)
        rec = json.load(open(q.lease_path("record:cam", 1)))
        assert rec["t"] > old_t
        q.release(lease)
        assert not os.path.exists(q.lease_path("record:cam", 1))

    def test_ready_entries_sorted_and_garbage_tolerant(self, tmp_path):
        q = _queue(tmp_path)
        q.publish_ready("record:b", epoch=1, attempt=0, seed_offset=0)
        q.publish_ready("record:a", epoch=1, attempt=0, seed_offset=0)
        with open(os.path.join(q.tasks_dir, "garbage.json"), "w") as fh:
            fh.write("{torn")
        ids = [e["task_id"] for e in q.ready_entries()]
        assert sorted(ids) == ids == ["record:a", "record:b"]

    def test_read_manifest_errors(self, tmp_path):
        q = WorkQueue(str(tmp_path / "cache"), "nope")
        with pytest.raises(QueueError, match="no queue"):
            q.read_manifest()
        q.write_manifest({"run_id": "nope", "cfg": {}})  # missing "graph"
        with pytest.raises(QueueError, match="graph"):
            q.read_manifest()


# ----------------------------------------------------------------------
class TestFencedCommit:
    """Artifact-level fencing: the cache refuses stale writers."""

    def _spec(self):
        return RunSpec(app=sorted(APPLICATIONS)[0], refs_per_iteration=500,
                       scale=1.0 / 256.0, n_iterations=1, seed=0)

    def test_begin_refused_up_front_on_stale_token(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        fence = str(tmp_path / "fence")
        write_fence(fence, 2)
        cache.fence = FencingToken(path=fence, epoch=1)
        with pytest.raises(FencedOutError):
            cache.begin(self._spec())

    def test_commit_refused_when_revoked_mid_record(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        fence = str(tmp_path / "fence")
        write_fence(fence, 1)
        cache.fence = FencingToken(path=fence, epoch=1)
        spec = self._spec()
        pending = cache.begin(spec)
        write_fence(fence, 2)  # the lease is revoked mid-record
        with pytest.raises(FencedOutError):
            pending.commit([], {"spec": spec.canonical(), "key": spec.key})
        # nothing committed: no marker, the spec still reads as absent
        assert not os.path.exists(
            os.path.join(cache.dir_for(spec.key), "meta.json"))
        assert cache.get(spec) is None

    def test_abort_after_revocation_leaves_directory_alone(self, tmp_path):
        # a revoked recorder that *aborts* (its write failed after the
        # winner republished into the same directory) must not clean
        # "its" files — they may be the winner's committed artifact now
        cache = ArtifactCache(str(tmp_path / "cache"))
        fence = str(tmp_path / "fence")
        write_fence(fence, 1)
        cache.fence = FencingToken(path=fence, epoch=1)
        spec = self._spec()
        pending = cache.begin(spec)
        write_fence(fence, 2)
        marker = os.path.join(cache.dir_for(spec.key), "meta.json")
        with open(marker, "w") as fh:  # the winner's commit marker
            fh.write("{}")
        pending.abort()
        assert os.path.exists(marker)


# ----------------------------------------------------------------------
def _worker_entry(cache_root: str, run_id: str, max_tasks: int) -> None:
    """Module-level so the fork context can run it as a Process target."""
    worker = QueueWorker(cache_root, run_id, worker_id=f"w{os.getpid()}",
                         poll_s=0.02, max_tasks=max_tasks)
    sys.exit(worker.run())


def _wait_for(predicate, deadline_s: float, what: str) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    pytest.fail(f"timed out after {deadline_s}s waiting for {what}")


def _snapshot(directory: str) -> dict[str, bytes]:
    """Every committed artifact byte, keyed by relative path."""
    out: dict[str, bytes] = {}
    for dirpath, _dirnames, filenames in os.walk(directory):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fh:
                out[os.path.relpath(path, directory)] = fh.read()
    return out


class TestZombieFencing:
    """The PR's acceptance criterion, end to end with real processes:
    SIGSTOP a worker past lease expiry, let the task be reassigned and
    committed, SIGCONT the zombie — its commit must be refused and the
    cache artifact must be the winner's, bit-identical."""

    def test_zombie_commit_refused_winner_preserved(self, tmp_path):
        cache_root = str(tmp_path / "cache")
        os.makedirs(cache_root)
        app = sorted(APPLICATIONS)[0]
        # heavy enough that the record reliably outlives the SIGSTOP
        # window between begin() (artifact dir appears) and commit:
        # recording runs ~1M refs/s, so 400k refs keeps the window a
        # few hundred ms wide even when this (1-core) test process is
        # descheduled between spotting the directory and the kill
        spec = RunSpec(app=app, refs_per_iteration=50_000,
                       scale=1.0 / 64.0, n_iterations=8, seed=0)
        tid = f"record:{app}"
        graph = TaskGraph([RecordTask(task_id=tid, name=app, spec=spec)])
        cfg = WorkerConfig(
            cache_root=cache_root,
            refs_per_iteration=spec.refs_per_iteration,
            scale=spec.scale, n_iterations=spec.n_iterations,
            seed=0, apps=(app,),
        )
        cfg_d = asdict(cfg)
        cfg_d["apps"] = list(cfg_d["apps"])
        queue = WorkQueue(cache_root, "zrun")
        queue.write_manifest({
            "run_id": "zrun", "fingerprint": graph.fingerprint(),
            "graph": graph.to_dict(), "cfg": cfg_d,
            "lease_ttl_s": 1.0, "heartbeat_s": 0.25, "reseed_stride": 1000,
        })
        queue.publish_ready(tid, epoch=1, attempt=0, seed_offset=0)

        mp = multiprocessing.get_context("fork")
        artifact_dir = ArtifactCache(cache_root).dir_for(spec.key)
        zombie = mp.Process(target=_worker_entry,
                            args=(cache_root, "zrun", 1), daemon=True)
        zombie.start()
        try:
            # wait until the zombie has claimed the lease AND passed
            # begin() — the artifact directory existing proves it is
            # mid-record, not pre-claim (a pre-claim SIGSTOP would let
            # it later win a clean cache hit instead of hitting the
            # fence, which is not the scenario under test)
            _wait_for(lambda: (os.path.exists(queue.lease_path(tid, 1))
                               and os.path.isdir(artifact_dir)),
                      30.0, "zombie to claim and start recording")
            assert not os.path.exists(queue.result_path(tid, 1)), \
                "record finished before it could be frozen; raise the spec"
            os.kill(zombie.pid, signal.SIGSTOP)

            # lease TTL (1s) expires while the holder is frozen; revoke
            # exactly as the coordinator does: fence bump FIRST, then
            # republish at the next epoch
            time.sleep(1.2)
            write_fence(queue.fence_path(tid), 2)
            queue.publish_ready(tid, epoch=2, attempt=1, seed_offset=0)

            winner = mp.Process(target=_worker_entry,
                                args=(cache_root, "zrun", 1), daemon=True)
            winner.start()
            # the winner waits out the zombie's still-held flock
            # (fence_lock_timeout, 5s), falls back to a staged
            # recording, and publishes with one fence-validated rename
            _wait_for(lambda: os.path.exists(queue.result_path(tid, 2)),
                      90.0, "winner to record and publish at epoch 2")
            winner.join(timeout=30.0)
            assert winner.exitcode == 0
            result = json.load(open(queue.result_path(tid, 2)))
            assert result["status"] == "ok"
            assert os.path.exists(os.path.join(artifact_dir, "meta.json"))
            committed = _snapshot(artifact_dir)

            # thaw the zombie: it resumes mid-record under epoch 1 and
            # must be fenced out of its commit, publishing nothing
            os.kill(zombie.pid, signal.SIGCONT)
            zombie.join(timeout=90.0)
            assert zombie.exitcode == EXIT_FENCED
        finally:
            for proc in (zombie,):
                if proc.is_alive():
                    try:
                        os.kill(proc.pid, signal.SIGCONT)
                    except OSError:
                        pass
                    proc.kill()
                    proc.join(timeout=5.0)

        assert not os.path.exists(queue.result_path(tid, 1)), \
            "the fenced zombie must not publish a result"
        assert _snapshot(artifact_dir) == committed, \
            "the winner's artifact changed after the zombie thawed"


# ----------------------------------------------------------------------
class TestQueueTransportEndToEnd:
    def test_results_bit_identical_to_sequential(self, tmp_path):
        exps = {k: EXPERIMENTS[k] for k in ("table1", "fig2")}
        base_ctx = make_ctx(tmp_path / "base")
        baseline = run_all(base_ctx, experiments=exps, jobs=1)

        ctx = make_ctx(tmp_path / "queue")
        results, report = run_suite_parallel(
            ctx, exps, jobs=2, transport="queue", lease_ttl_s=10.0,
            handle_signals=False)
        assert report.n_failed == 0 and report.n_skipped == 0
        assert report.run_id
        for want, got in zip(baseline, results):
            assert got.text == want.text
            assert got.rows == want.rows
            assert got.notes == want.notes

    def test_worker_error_retries_then_skips_dependents(self, tmp_path):
        cache_root = str(tmp_path / "cache")
        os.makedirs(cache_root)
        boom = ExperimentTask(task_id="exp:boom", exp_id="no-such-exp")
        child = ExperimentTask(task_id="exp:child", exp_id="table1",
                               deps=("exp:boom",))
        graph = TaskGraph([boom, child])
        cfg = WorkerConfig(cache_root=cache_root, seed=0,
                           apps=("cam",), **FAST)
        outcome = QueueCoordinator(
            graph, cfg, cache_root=cache_root, run_id="errs", jobs=1,
            max_task_retries=1, lease_ttl_s=10.0, poll_s=0.02,
            worker_poll_s=0.02, handle_signals=False,
        ).run()
        assert set(outcome.failures) == {"exp:boom"}
        assert outcome.failures["exp:boom"]["attempts"] == 2
        assert set(outcome.skipped) == {"exp:child"}
        assert outcome.report.n_retries == 1


# ----------------------------------------------------------------------
class TestGcKeepsLiveQueues:
    def _run_with_queue(self, cache: ArtifactCache, run_id: str,
                        lease_age_s: float) -> str:
        jnl = RunJournal.open(cache.root, run_id)
        jnl.append("run_started", run_id=run_id, fingerprint="x", jobs=1)
        jnl.run_finished()  # drops the DONE marker: run is evictable
        jnl.close()
        qdir = os.path.join(cache.root, "runs", run_id, QUEUE_DIR)
        leases = os.path.join(qdir, QUEUE_LEASES_DIR)
        os.makedirs(leases)
        with open(os.path.join(qdir, "manifest.json"), "w") as fh:
            json.dump({"lease_ttl_s": 1.0}, fh)
        lease = os.path.join(leases, "record_x-00000000.3.json")
        with open(lease, "w") as fh:
            json.dump({"task_id": "record:x", "epoch": 3}, fh)
        when = time.time() - lease_age_s
        os.utime(lease, (when, when))
        return run_id

    def test_fresh_lease_protects_finished_run(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        self._run_with_queue(cache, "live", lease_age_s=0.0)
        report = cache.gc(max_bytes=0)
        assert report.kept_queues == ["live"]
        assert "live" not in report.evicted_runs
        assert os.path.isdir(os.path.join(cache.root, "runs", "live"))

    def test_stale_lease_releases_the_run(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        # grace is max(60, 4*ttl) with ttl=1 → 60s; age well past it
        self._run_with_queue(cache, "dead", lease_age_s=3600.0)
        report = cache.gc(max_bytes=0)
        assert report.kept_queues == []
        assert "dead" in report.evicted_runs


# ----------------------------------------------------------------------
def _write_run(cache_root: str, run_id: str, jobs: int, wall_s: float,
               task_walls: list[float], finished: bool = True) -> None:
    jnl = RunJournal.open(cache_root, run_id)
    jnl.append("run_started", run_id=run_id, fingerprint="x", jobs=jobs,
               seed=0)
    for i, w in enumerate(task_walls):
        jnl.task_finished(f"exp:t{i}", 0, {"wall_s": w})
    if finished:
        jnl.run_finished(jobs=jobs, wall_s=wall_s)
    jnl.close()


class TestAdaptiveJobs:
    def test_no_history_falls_back_to_cpu_heuristic(self, tmp_path):
        jobs, reason = adaptive_jobs(str(tmp_path), width=4)
        assert jobs == max(1, min(os.cpu_count() or 1, 4))
        assert "no journaled run history" in reason

    def test_unfinished_runs_are_not_evidence(self, tmp_path):
        root = str(tmp_path)
        _write_run(root, "crashed", jobs=4, wall_s=1.0,
                   task_walls=[1.0], finished=False)
        assert run_history(root) == []

    def test_history_degrades_to_sequential_when_parallelism_loses(
            self, tmp_path):
        root = str(tmp_path)
        # the measured pathology this feature exists for: jobs=4 on a
        # 1-core box ran at 0.28x the sequential throughput
        _write_run(root, "r1", jobs=1, wall_s=10.0, task_walls=[5.0, 5.0])
        _write_run(root, "r2", jobs=4, wall_s=10.0, task_walls=[1.5, 1.3])
        jobs, _reason = adaptive_jobs(root, width=8)
        assert jobs == 1

    def test_marginal_parallel_gain_is_not_worth_a_pool(self, tmp_path):
        root = str(tmp_path)
        # jobs=4 "wins" at 1.03x — inside MIN_GAIN noise, so the sizer
        # refuses to pay fork/IPC overhead for it
        _write_run(root, "r1", jobs=1, wall_s=10.0, task_walls=[5.0, 5.0])
        _write_run(root, "r2", jobs=4, wall_s=10.0, task_walls=[5.1, 5.2])
        jobs, reason = adaptive_jobs(root, width=8)
        assert jobs == 1
        assert "does not pay" in reason

    def test_history_picks_best_observed_pool(self, tmp_path):
        root = str(tmp_path)
        _write_run(root, "r1", jobs=1, wall_s=10.0, task_walls=[10.0])
        _write_run(root, "r2", jobs=2, wall_s=5.0, task_walls=[5.0, 4.8])
        jobs, reason = adaptive_jobs(root, width=8)
        assert jobs == 2
        assert "history picks jobs=2" in reason
        # ... clamped to the graph's useful width
        jobs, reason = adaptive_jobs(root, width=1)
        assert jobs == 1
        assert "clamped" in reason

    def test_history_samples_reconstruct_speedup(self, tmp_path):
        root = str(tmp_path)
        _write_run(root, "r1", jobs=2, wall_s=4.0, task_walls=[3.0, 5.0])
        (sample,) = run_history(root)
        assert sample.jobs == 2
        assert sample.n_tasks == 2
        assert sample.speedup == pytest.approx(2.0)
