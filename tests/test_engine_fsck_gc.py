"""``engine fsck`` / ``engine gc``: cache scrubbing and budget eviction."""

import json
import os
import shutil
import subprocess
import time

import pytest

from repro import cli
from repro.engine import ArtifactCache, PipelineEngine, RunSpec
from repro.engine.chaos import flip_file_bit
from repro.engine.artifacts import (
    STAGE_MARKER,
    STAGE_TTL_S,
    _host_tag,
)
from repro.errors import ConfigurationError

SPEC = dict(refs_per_iteration=800, scale=1.0 / 256.0, n_iterations=2)


def make_spec(app="gtc", seed=0):
    return RunSpec(app=app, seed=seed, **SPEC)


def populate(root, n=3):
    """Commit *n* distinct artifacts; returns (cache, specs)."""
    cache = ArtifactCache(root)
    eng = PipelineEngine(cache=cache)
    specs = [make_spec(seed=s) for s in range(n)]
    for spec in specs:
        eng.record(spec)
    return cache, specs


# ----------------------------------------------------------------------
class TestFsck:
    def test_clean_cache_is_clean(self, tmp_path):
        cache, specs = populate(tmp_path)
        report = cache.fsck()
        assert report.clean
        assert len(report.ok) == len(specs)
        assert not report.partial and not report.corrupt
        assert "3 ok" in report.table()

    def test_detects_every_injected_bitflip(self, tmp_path):
        """100% detection: a flip in any committed file, over many seeds,
        always surfaces as a corrupt entry."""
        cache, specs = populate(tmp_path, n=1)
        spec = specs[0]
        pristine = tmp_path / "pristine"
        shutil.copytree(cache.dir_for(spec.key), pristine)
        detected = 0
        trials = 0
        for target in ("refs.tv3", "events.json", "meta.json"):
            for seed in range(8):
                shutil.rmtree(cache.dir_for(spec.key))
                shutil.copytree(pristine, cache.dir_for(spec.key))
                flip_file_bit(os.path.join(cache.dir_for(spec.key), target),
                              seed=seed)
                trials += 1
                report = cache.fsck()
                if not report.clean:
                    detected += 1
        assert detected == trials, f"missed {trials - detected}/{trials} flips"

    def test_partial_does_not_make_cache_unclean(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        pending = cache.begin(make_spec(seed=99))
        pending.writer.close()  # refs.tv3 exists, no commit marker
        pending._finish()
        report = cache.fsck()
        assert report.clean  # the commit protocol already hides partials
        assert len(report.partial) == 1
        assert "no meta.json" in report.partial[0].detail

    def test_repair_quarantines_corrupt_and_removes_partial(self, tmp_path):
        cache, specs = populate(tmp_path, n=2)
        bad = specs[0]
        flip_file_bit(cache.get(bad).refs_path, seed=1)
        pending = cache.begin(make_spec(seed=99))
        pending.writer.close()
        pending._finish()
        report = cache.fsck(repair=True)
        assert report.clean  # everything found was repaired this pass
        assert report.corrupt[0].action == "quarantined"
        assert report.partial[0].action == "removed"
        assert cache.get(bad) is None  # out of service
        # the forensic copy exists next to where the artifact lived
        shard = os.path.dirname(cache.dir_for(bad.key))
        assert any(".quarantine" in d for d in os.listdir(shard))
        # a second pass sees a healthy cache (+1 quarantine dir)
        again = cache.fsck()
        assert again.clean
        assert again.quarantined_dirs == 1
        assert not again.partial

    def test_unrepaired_corruption_is_unclean(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        flip_file_bit(cache.get(specs[0]).refs_path, seed=2)
        report = cache.fsck(repair=False)
        assert not report.clean
        assert report.corrupt and not report.corrupt[0].action

    def test_stray_tmp_files_reported_and_removed(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        art = cache.get(specs[0])
        stray = os.path.join(art.directory, "meta.json.tmp")
        with open(stray, "w") as fh:
            fh.write("{}")
        report = cache.fsck()
        assert report.clean  # stray tmp alongside a valid commit is benign
        assert "stray tmp" in report.ok[0].detail
        cache.fsck(repair=True)
        assert not os.path.exists(stray)

    def test_misfiled_artifact_is_corrupt(self, tmp_path):
        """meta.json naming a different key (copied/moved by hand)."""
        cache, specs = populate(tmp_path, n=1)
        src = cache.dir_for(specs[0].key)
        fake_key = "ab" + "0" * 62
        dest = cache.dir_for(fake_key)
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        shutil.copytree(src, dest)
        report = cache.fsck()
        assert not report.clean
        assert any(e.key == fake_key and "misfiled" in e.detail
                   for e in report.corrupt)


# ----------------------------------------------------------------------
class TestGc:
    def test_under_budget_evicts_nothing(self, tmp_path):
        cache, specs = populate(tmp_path)
        report = cache.gc(max_bytes=1 << 30)
        assert not report.evicted and not report.over_budget
        assert report.before_bytes == report.after_bytes
        for spec in specs:
            assert cache.get(spec) is not None

    def test_lru_order_by_last_access_stamp(self, tmp_path):
        cache, specs = populate(tmp_path)
        sizes = {s.key: cache.get(s).size_bytes() for s in specs}
        # pin explicit last-use stamps: specs[1] oldest, specs[0] newest
        for rank, spec in zip((2, 0, 1), specs):
            t = 1_000_000_000 + rank * 1_000
            os.utime(cache.get(spec).last_access_path, (t, t))
        budget = sum(sizes.values()) - 1  # must evict exactly the oldest
        report = cache.gc(budget)
        assert report.evicted == [specs[1].key]
        assert cache.get(specs[1]) is None
        assert cache.get(specs[0]) is not None
        assert cache.get(specs[2]) is not None
        assert not report.over_budget

    def test_get_refreshes_lru_stamp(self, tmp_path):
        cache, specs = populate(tmp_path)
        old = 1_000_000_000
        for spec in specs:
            os.utime(cache.get(spec).last_access_path, (old, old))
        # a hit on specs[0] must move it to the back of the eviction queue
        cache.get(specs[0])
        total = sum(cache.get(s).size_bytes() for s in specs)
        report = cache.gc(total - 1)
        assert specs[0].key not in report.evicted
        assert len(report.evicted) >= 1

    def test_pre_stamp_cache_falls_back_to_meta_mtime(self, tmp_path):
        """A cache written before the last_access stamp existed (no
        sidecar files) must still evict in a sensible order — by
        meta.json mtime, never atime."""
        cache, specs = populate(tmp_path)
        sizes = {}
        for spec in specs:
            art = cache.get(spec)
            sizes[spec.key] = art.size_bytes()
            os.unlink(art.last_access_path)  # simulate a pre-stamp cache
        for rank, spec in zip((1, 2, 0), specs):
            t = 1_000_000_000 + rank * 1_000
            meta = os.path.join(cache.dir_for(spec.key), "meta.json")
            # pin mtime but give atime a *contradictory* (newest) value:
            # ordering must ignore it, as it would on a noatime mount
            os.utime(meta, (2_000_000_000 - rank, t))
        report = cache.gc(sum(sizes.values()) - 1)
        assert report.evicted == [specs[2].key]

    def test_in_use_artifact_never_evicted(self, tmp_path):
        cache, specs = populate(tmp_path, n=2)
        lock = cache.lock_for(specs[0].key)
        lock.acquire(timeout=1.0)
        try:
            report = cache.gc(max_bytes=0)
            assert specs[0].key in report.skipped_in_use
            assert specs[0].key not in report.evicted
            assert cache.get(specs[0]) is not None
            assert report.over_budget
            assert "still over budget" in report.summary()
        finally:
            lock.release()
        assert cache.get(specs[1]) is None  # the free one was evicted

    def test_protect_keys(self, tmp_path):
        cache, specs = populate(tmp_path, n=2)
        report = cache.gc(max_bytes=0, protect=(specs[1].key,))
        assert cache.get(specs[1]) is not None
        assert specs[1].key in report.skipped_in_use
        assert cache.get(specs[0]) is None

    def test_partials_are_removed_first(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        pending = cache.begin(make_spec(seed=99))
        pending.writer.close()
        pending._finish()
        report = cache.gc(max_bytes=1 << 30)
        assert report.removed_partial == 1
        assert not report.evicted  # the committed artifact survived
        assert cache.get(specs[0]) is not None

    def test_quarantine_dirs_evicted_before_artifacts(self, tmp_path):
        cache, specs = populate(tmp_path, n=2)
        flip_file_bit(cache.get(specs[0]).refs_path, seed=3)
        cache.fsck(repair=True)  # specs[0] -> quarantine dir
        live = cache.get(specs[1])
        budget = live.size_bytes()  # room for exactly the live artifact
        report = cache.gc(budget)
        assert len(report.evicted_quarantine) == 1
        assert not report.evicted
        assert cache.get(specs[1]) is not None


# ----------------------------------------------------------------------
class TestCliFsckGc:
    def test_fsck_exit_0_on_clean(self, tmp_path, capsys):
        populate(tmp_path, n=1)
        rc = cli.main(["engine", "fsck", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "1 ok" in capsys.readouterr().out

    def test_fsck_exit_1_on_corruption(self, tmp_path, capsys):
        cache, specs = populate(tmp_path, n=1)
        flip_file_bit(cache.get(specs[0]).refs_path, seed=4)
        rc = cli.main(["engine", "fsck", "--cache-dir", str(tmp_path)])
        assert rc == 1
        assert "corrupt" in capsys.readouterr().out

    def test_fsck_repair_then_clean(self, tmp_path, capsys):
        cache, specs = populate(tmp_path, n=1)
        flip_file_bit(cache.get(specs[0]).refs_path, seed=4)
        rc = cli.main(["engine", "fsck", "--cache-dir", str(tmp_path),
                       "--repair"])
        assert rc == 0  # repaired this very pass: nothing left in service
        assert "quarantined" in capsys.readouterr().out
        assert cli.main(["engine", "fsck", "--cache-dir",
                         str(tmp_path)]) == 0

    def test_gc_exit_0_and_reports(self, tmp_path, capsys):
        populate(tmp_path, n=2)
        rc = cli.main(["engine", "gc", "--cache-dir", str(tmp_path),
                       "--max-bytes", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "evicted 2 artifact(s)" in out

    def test_gc_bad_budget_is_usage_error(self, tmp_path, capsys):
        rc = cli.main(["engine", "gc", "--cache-dir", str(tmp_path),
                       "--max-bytes", "lots"])
        assert rc == 2
        assert "cannot parse byte size" in capsys.readouterr().err

    @pytest.mark.parametrize("text,expect", [
        ("1048576", 1 << 20),
        ("500K", 500 << 10),
        ("2g", 2 << 30),
        ("1.5M", int(1.5 * (1 << 20))),
        ("10MiB", 10 << 20),
        ("0", 0),
    ])
    def test_parse_bytes(self, text, expect):
        assert cli._parse_bytes(text) == expect

    @pytest.mark.parametrize("text", ["", "-1", "4x", "M"])
    def test_parse_bytes_rejects_junk(self, text):
        with pytest.raises(ConfigurationError):
            cli._parse_bytes(text)

    def test_gc_respects_suffix_budget(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        rc = cli.main(["engine", "gc", "--cache-dir", str(tmp_path),
                       "--max-bytes", "1G"])
        assert rc == 0
        assert cache.get(specs[0]) is not None

    def test_engine_stats_prints_healing_counters(self, tmp_path, capsys):
        rc = cli.main(["engine", "stats", "gtc", "--refs", "500",
                       "--iterations", "2", "--scale", str(1.0 / 256.0),
                       "--cache-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "quarantined: 0" in out and "re-recorded: 0" in out

    def test_fsck_survives_junk_files_in_cache_root(self, tmp_path, capsys):
        cache, _specs = populate(tmp_path, n=1)
        # files (not dirs) and odd names must not crash the walk
        with open(tmp_path / "README", "w") as fh:
            fh.write("not an artifact\n")
        os.makedirs(tmp_path / "zz" / "not-a-key-either", exist_ok=True)
        with open(tmp_path / "zz" / "stray-file", "w") as fh:
            fh.write("x")
        rc = cli.main(["engine", "fsck", "--cache-dir", str(tmp_path)])
        # the stray dir has no commit marker: a partial, still clean
        assert rc == 0

    def test_quarantine_meta_readable_for_forensics(self, tmp_path):
        """The quarantined copy keeps its files for post-mortem."""
        cache, specs = populate(tmp_path, n=1)
        art = cache.get(specs[0])
        flip_file_bit(art.refs_path, seed=5)
        cache.fsck(repair=True)
        shard = os.path.dirname(cache.dir_for(specs[0].key))
        qdir = next(os.path.join(shard, d) for d in os.listdir(shard)
                    if ".quarantine" in d)
        with open(os.path.join(qdir, "meta.json")) as fh:
            meta = json.load(fh)
        assert meta["key"] == specs[0].key


# ----------------------------------------------------------------------
class TestStageEviction:
    """Fenced staged recordings (``<key>.stage.<epoch>-<pid>-<tag>/``):
    fsck and gc evict a stage whose *local* recorder pid is gone
    immediately, fall back to the TTL for remote or old-format names,
    and never touch a stage whose recorder is still alive."""

    @staticmethod
    def make_stage(cache, key, suffix, age_s=0.0):
        path = cache.dir_for(key) + STAGE_MARKER + suffix
        os.makedirs(path)
        with open(os.path.join(path, "refs.tv3"), "w") as fh:
            fh.write("half-written stage payload")
        if age_s:
            t = time.time() - age_s
            os.utime(path, (t, t))
        return path

    @staticmethod
    def dead_pid():
        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        return proc.pid

    def test_fsck_evicts_local_dead_pid_stage_immediately(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        stage = self.make_stage(cache, specs[0].key,
                                f"3-{self.dead_pid()}-{_host_tag()}")
        report = cache.fsck()
        assert any("orphaned fenced stage" in e.detail
                   for e in report.partial)
        cache.fsck(repair=True)
        assert not os.path.exists(stage)
        assert cache.get(specs[0]) is not None  # the artifact survived

    def test_live_and_remote_stages_are_kept(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        remote_tag = "0" * 8 if _host_tag() != "0" * 8 else "1" * 8
        kept = [
            # a live local recorder owns this stage
            self.make_stage(cache, specs[0].key,
                            f"3-{os.getpid()}-{_host_tag()}"),
            # remote host: its pid table means nothing here, TTL only
            self.make_stage(cache, specs[0].key,
                            f"4-{self.dead_pid()}-{remote_tag}"),
            # pre-host-tag name format: TTL only
            self.make_stage(cache, specs[0].key, f"5-{self.dead_pid()}"),
        ]
        report = cache.fsck(repair=True)
        assert report.clean
        for path in kept:
            assert os.path.isdir(path), f"live/remote stage evicted: {path}"

    def test_ttl_still_reaps_old_format_and_remote_stages(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        old = STAGE_TTL_S + 60
        stale = [
            self.make_stage(cache, specs[0].key,
                            f"6-{self.dead_pid()}", age_s=old),
            self.make_stage(cache, specs[0].key,
                            f"7-{self.dead_pid()}-{'0' * 8}", age_s=old),
        ]
        report = cache.fsck()
        assert sum("stale fenced stage" in e.detail
                   for e in report.partial) == 2
        cache.fsck(repair=True)
        for path in stale:
            assert not os.path.exists(path)

    def test_gc_removes_dead_pid_stage_under_any_budget(self, tmp_path):
        cache, specs = populate(tmp_path, n=1)
        dead = self.make_stage(cache, specs[0].key,
                               f"8-{self.dead_pid()}-{_host_tag()}")
        live = self.make_stage(cache, specs[0].key,
                               f"9-{os.getpid()}-{_host_tag()}")
        report = cache.gc(max_bytes=1 << 30)
        assert report.removed_partial == 1
        assert not os.path.exists(dead)
        assert os.path.isdir(live)
        assert cache.get(specs[0]) is not None
