"""Format compatibility against *committed* v1/v2 archives.

These fixtures are frozen bytes written by the historical formats (see
``tests/fixtures/make_fixtures.py``). Every test migrates them through
the v3 writer and checks the result batch-by-batch against both the
fixture bytes and the canonical in-memory content — so a change to the
v3 codec, the column layout, or the CRC formula that silently altered
replayed data would fail here even if the self-roundtrip tests pass.
"""

import os
import sys

import numpy as np
import pytest

from repro.trace.fsio import _batch_crc
from repro.trace.io import TraceReader
from repro.trace.chunked import migrate_trace

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
sys.path.insert(0, FIXTURES)

from make_fixtures import fixture_batches  # noqa: E402


def fixture(name):
    return os.path.join(FIXTURES, name)


def assert_batches_equal(a, b):
    assert a.iteration == b.iteration
    np.testing.assert_array_equal(a.addr, b.addr)
    np.testing.assert_array_equal(a.is_write, b.is_write)
    np.testing.assert_array_equal(a.size, b.size)
    np.testing.assert_array_equal(a.oid, b.oid)


@pytest.mark.parametrize("name,version", [
    ("trace-v1.npz", 1),
    ("trace-v2.npz", 2),
])
class TestCommittedFixtures:
    def test_fixture_still_loads_and_matches_generator(self, name, version):
        with TraceReader(fixture(name)) as reader:
            assert reader.version == version
            got = list(reader)
        want = fixture_batches()
        assert len(got) == len(want)
        for a, b in zip(want, got):
            assert_batches_equal(a, b)

    def test_migration_to_v3_is_bit_identical(self, name, version, tmp_path):
        dst = str(tmp_path / "migrated")
        n, total = migrate_trace(fixture(name), dst)
        with TraceReader(fixture(name)) as old, TraceReader(dst) as new:
            assert new.version == 3
            assert n == old.n_batches
            old_batches = list(old)
            new_batches = list(new)
        assert total == sum(len(b) for b in old_batches)
        for a, b in zip(old_batches, new_batches):
            assert_batches_equal(a, b)

    def test_migration_preserves_payload_crcs(self, name, version, tmp_path):
        dst = str(tmp_path / "migrated")
        migrate_trace(fixture(name), dst)
        with TraceReader(fixture(name)) as old, TraceReader(dst) as new:
            # v2 stored these CRCs on disk; v1 recomputes from content.
            # Either way the migrated index must carry the same values,
            # which keeps the service content digest stable across formats.
            assert old.payload_crcs() == new.payload_crcs()
        want = [
            _batch_crc(b.addr, b.is_write, b.size, b.oid, b.iteration)
            for b in fixture_batches()
        ]
        with TraceReader(dst) as new:
            assert new.payload_crcs() == want
