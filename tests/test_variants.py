"""Input-variant applications and the §VII-B input-dependence claim."""

import pytest

from repro.apps import VARIANT_OF, VARIANTS, Nek5000MovingBoundary, create_app
from repro.apps.variants import _patch_structures
from repro.errors import ConfigurationError
from repro.experiments import ExperimentContext, run_experiment
from repro.scavenger import NVScavenger
from tests.conftest import FAST_SCALE


def analyze(cls, refs=6000, iters=5):
    app = cls(scale=FAST_SCALE, refs_per_iteration=refs, n_iterations=iters)
    return NVScavenger().analyze(app, n_main_iterations=iters)


class TestVariantRegistry:
    def test_every_base_app_has_a_variant(self):
        assert set(VARIANT_OF) == {"nek5000", "cam", "gtc", "s3d"}
        assert len(VARIANTS) == 4

    def test_variants_are_subclasses(self):
        for base_name, cls in VARIANT_OF.items():
            assert issubclass(cls, type(create_app(base_name)))

    def test_patch_unknown_structure_rejected(self):
        from repro.apps.nek5000 import Nek5000

        with pytest.raises(ConfigurationError):
            _patch_structures(Nek5000.structures, {"no_such_structure": {}})

    def test_variants_run(self):
        for cls in VARIANTS.values():
            res = analyze(cls, refs=3000, iters=3)
            assert res.total_refs > 0


class TestInputDependence:
    def test_nek_boundary_conditions_flip(self):
        """The paper's own example: boundary conditions are read-only under
        one input and read-written under another."""
        base = analyze(type(create_app("nek5000")))
        variant = analyze(Nek5000MovingBoundary)
        bc_base = next(
            m for m in base.object_metrics if "boundary_conditions" in m.name
        )
        bc_var = next(
            m for m in variant.object_metrics if "boundary_conditions" in m.name
        )
        assert bc_base.read_only
        assert not bc_var.read_only
        assert bc_var.writes > 0

    def test_variant_footprints_grow(self):
        for base_name, cls in VARIANT_OF.items():
            base = create_app(base_name)
            assert cls.info.paper_footprint_mb > base.info.paper_footprint_mb

    def test_inputs_experiment_reports_flips(self):
        ctx = ExperimentContext(refs_per_iteration=8000, scale=1.0 / 256.0)
        res = run_experiment("inputs", ctx)
        assert len(res.rows) == 4
        # every app demonstrates at least one classification change
        for r in res.rows:
            assert r["n_changed"] >= 1, r["application"]
        nek = next(r for r in res.rows if r["application"] == "nek5000")
        assert any("boundary_conditions" in c for c in nek["changed"])
