"""AddressSpace: object table identity rules (§III)."""

import pytest

from repro.errors import InstrumentationError
from repro.memory.address_space import AddressSpace
from repro.memory.object import ObjectKind


def test_define_global_creates_object():
    sp = AddressSpace()
    obj = sp.define_global("mass_matrix", 1024)
    assert obj.kind is ObjectKind.GLOBAL
    assert obj.size == 1024
    assert sp.object(obj.oid) is obj


def test_heap_signature_folding():
    """Same callsite + callstack + base + size => one logical object."""
    sp = AddressSpace()
    sp.call("main", 64)
    a = sp.malloc(256, "solver.f90:42")
    sp.free(a.base)
    b = sp.malloc(256, "solver.f90:42")
    assert a.oid == b.oid
    assert b.alive
    sp.ret()


def test_heap_different_callsite_not_folded():
    sp = AddressSpace()
    a = sp.malloc(256, "x.c:1")
    sp.free(a.base)
    b = sp.malloc(256, "y.c:2")  # same base (address reuse), different site
    assert a.base == b.base
    assert a.oid != b.oid
    assert not a.alive and b.alive


def test_heap_different_callstack_not_folded():
    sp = AddressSpace()
    sp.call("f", 32)
    a = sp.malloc(64, "s:1")
    sp.free(a.base)
    sp.ret()
    sp.call("g", 32)
    b = sp.malloc(64, "s:1")
    sp.ret()
    assert a.oid != b.oid


def test_dead_flag_set_on_free():
    sp = AddressSpace()
    a = sp.malloc(128, "s:1")
    assert a.alive
    sp.free(a.base)
    assert not sp.object(a.oid).alive


def test_free_untracked_raises():
    sp = AddressSpace()
    with pytest.raises(InstrumentationError):
        sp.free(0x123456)


def test_realloc_marks_old_dead_and_creates_new():
    sp = AddressSpace()
    a = sp.malloc(128, "s:1")
    b = sp.realloc(a.base, 64, "s:2")
    assert not sp.object(a.oid).alive
    assert b.alive
    assert b.size == 64


def test_live_heap_object_at():
    sp = AddressSpace()
    a = sp.malloc(128, "s:1")
    assert sp.live_heap_object_at(a.base) is a
    sp.free(a.base)
    assert sp.live_heap_object_at(a.base) is None


def test_stack_frame_object_per_routine():
    """All invocations of a routine share one frame object (routine
    signature = starting address in the paper)."""
    sp = AddressSpace()
    f1 = sp.call("kernel", 128)
    sp.ret()
    sp.call("outer", 64)
    f2 = sp.call("kernel", 128)  # deeper this time
    sp.ret()
    sp.ret()
    assert f1.oid == f2.oid
    # footprint tracks the deepest extent
    assert sp.frame_object_for("kernel").base <= f1.base


def test_common_block_single_object():
    sp = AddressSpace()
    obj = sp.define_common_block("/com/", [("a", 64), ("b", 64)])
    assert obj.kind is ObjectKind.GLOBAL
    assert obj.size == 128
    assert "/com/%a" in obj.name


def test_birth_iteration_tracked():
    sp = AddressSpace()
    pre = sp.malloc(64, "pre:1")
    sp.current_iteration = 3
    mid = sp.malloc(64, "mid:1")
    assert pre.birth_iteration == 0
    assert mid.birth_iteration == 3


def test_footprint_accounting():
    sp = AddressSpace()
    sp.define_global("g", 1000)
    sp.malloc(500, "s:1")
    sp.call("main", 256)
    fp = sp.footprint_bytes()
    # globals are 16-aligned internally; footprint >= requested bytes
    assert fp >= 1000 + 500 + 256
