"""RefBatch construction and operations."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.record import AccessType, RefBatch


def test_from_access_uniform():
    b = RefBatch.from_access(np.array([8, 16, 24], dtype=np.uint64), AccessType.WRITE,
                             size=8, oid=3, iteration=2)
    assert len(b) == 3
    assert b.n_writes == 3 and b.n_reads == 0
    assert b.iteration == 2
    assert (b.oid == 3).all()
    assert (b.size == 8).all()


def test_empty():
    b = RefBatch.empty(iteration=5)
    assert len(b) == 0
    assert b.iteration == 5


def test_dtype_coercion():
    b = RefBatch(
        addr=np.array([1, 2]),
        is_write=np.array([0, 1]),
        size=np.array([8, 8]),
        oid=np.array([0, 1]),
    )
    assert b.addr.dtype == np.uint64
    assert b.is_write.dtype == bool
    assert b.size.dtype == np.uint8
    assert b.oid.dtype == np.int32


def test_shape_mismatch_raises():
    with pytest.raises(TraceError):
        RefBatch(
            addr=np.array([1, 2], dtype=np.uint64),
            is_write=np.array([True]),
            size=np.array([8, 8], dtype=np.uint8),
            oid=np.array([0, 0], dtype=np.int32),
        )


def test_take_mask_and_index():
    b = RefBatch.from_access(np.arange(10, dtype=np.uint64), AccessType.READ)
    sub = b.take(b.addr >= 5)
    assert len(sub) == 5
    sub2 = b.take(np.array([0, 2, 4]))
    assert sub2.addr.tolist() == [0, 2, 4]


def test_with_oid():
    b = RefBatch.from_access(np.arange(4, dtype=np.uint64), AccessType.READ)
    c = b.with_oid(np.array([9, 9, 9, 9], dtype=np.int32))
    assert (c.oid == 9).all()
    assert c.addr is b.addr  # shares the other arrays


def test_counts():
    b = RefBatch(
        addr=np.arange(4, dtype=np.uint64),
        is_write=np.array([True, False, True, False]),
        size=np.full(4, 8, np.uint8),
        oid=np.zeros(4, np.int32),
    )
    assert b.n_reads == 2 and b.n_writes == 2
