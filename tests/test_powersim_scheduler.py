"""FR-FCFS scheduling vs the in-order controller."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nvram.technology import DRAM_DDR3
from repro.powersim.config import TABLE3_DEVICE
from repro.powersim.controller import MemoryController
from repro.powersim.scheduler import FRFCFSController
from repro.trace.record import AccessType, RefBatch


def interleaved_rows_batch(n_pairs=200):
    """Alternating accesses to two rows of the SAME bank: worst case for
    FCFS (ping-pong row conflicts), ideal for FR-FCFS grouping."""
    row_stride = TABLE3_DEVICE.row_bytes * TABLE3_DEVICE.total_banks
    a = np.arange(n_pairs, dtype=np.uint64) % 8 * 64
    b = a + row_stride
    addrs = np.stack([a, b], axis=1).ravel()
    return RefBatch.from_access(addrs, AccessType.READ)


def streaming_batch(n=500):
    return RefBatch.from_access(np.arange(n, dtype=np.uint64) * 64, AccessType.READ)


class TestFRFCFS:
    def test_conserves_transactions(self):
        ctl = FRFCFSController(TABLE3_DEVICE, DRAM_DDR3)
        batch = interleaved_rows_batch()
        ctl.process_batch(batch)
        ctl.drain()
        assert ctl.stats.accesses == len(batch)
        assert ctl.stats.row_hits + ctl.stats.row_misses == len(batch)

    def test_improves_row_hits_on_conflicting_traffic(self):
        batch = interleaved_rows_batch()
        fcfs = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        fcfs.process_batch(batch)
        frfcfs = FRFCFSController(TABLE3_DEVICE, DRAM_DDR3, window=16)
        frfcfs.process_batch(batch)
        frfcfs.drain()
        assert frfcfs.row_hit_rate > fcfs.stats.row_hit_rate
        assert frfcfs.reorders > 0

    def test_no_benefit_on_streaming(self):
        """Pure streaming is already all row hits: nothing to reorder."""
        batch = streaming_batch()
        frfcfs = FRFCFSController(TABLE3_DEVICE, DRAM_DDR3)
        frfcfs.process_batch(batch)
        frfcfs.drain()
        assert frfcfs.reorders == 0
        assert frfcfs.row_hit_rate > 0.95

    def test_starvation_cap_bounds_bypasses(self):
        ctl = FRFCFSController(TABLE3_DEVICE, DRAM_DDR3, window=8, max_bypass=2)
        ctl.process_batch(interleaved_rows_batch(400))
        ctl.drain()
        # with the cap, every transaction still completed
        assert ctl.stats.accesses == 800

    def test_window_one_degenerates_to_fcfs(self):
        batch = interleaved_rows_batch(100)
        fcfs = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
        fcfs.process_batch(batch)
        win1 = FRFCFSController(TABLE3_DEVICE, DRAM_DDR3, window=1)
        win1.process_batch(batch)
        win1.drain()
        assert win1.reorders == 0
        assert win1.stats.row_hits == fcfs.stats.row_hits

    def test_empty_batch(self):
        ctl = FRFCFSController(TABLE3_DEVICE, DRAM_DDR3)
        ctl.process_batch(RefBatch.empty())
        ctl.drain()
        assert ctl.stats.accesses == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            FRFCFSController(TABLE3_DEVICE, DRAM_DDR3, window=0)
        with pytest.raises(ConfigurationError):
            FRFCFSController(TABLE3_DEVICE, DRAM_DDR3, max_bypass=-1)
