"""Microbenchmarks with known signatures: end-to-end pipeline validation."""

import numpy as np
import pytest

from repro.cachesim import MemoryTraceProbe
from repro.errors import ConfigurationError
from repro.perfsim import PerformanceSimulator, estimate_prefetch_coverage
from repro.scavenger import NVScavenger
from repro.scavenger.locality import LocalityAnalyzer
from repro.workloads.microbench import (
    GUPS,
    MICROBENCHES,
    PointerChase,
    Stencil5,
    StreamTriad,
    create_microbench,
)


def full_pipeline(bench):
    """Analyze + cache-filter + locality in one instrumented run."""
    cache = MemoryTraceProbe()
    loc = LocalityAnalyzer()
    sc = NVScavenger(extra_probes=[cache, loc])
    instructions = 0
    dep_frac = 0.0

    def program(rt):
        nonlocal instructions, dep_frac
        bench(rt)
        instructions = rt.instruction_count
        dep_frac = rt.dependent_refs / rt.refs_emitted if rt.refs_emitted else 0.0

    result = sc.analyze(program, n_main_iterations=bench.iterations)
    return result, cache, loc.scores(), instructions, dep_frac


class TestRegistry:
    def test_names(self):
        assert set(MICROBENCHES) == {
            "stream_triad", "gups", "pointer_chase", "stencil5",
        }

    def test_create(self):
        b = create_microbench("gups", n=1024, iterations=2)
        assert isinstance(b, GUPS)
        with pytest.raises(ConfigurationError):
            create_microbench("linpack")
        with pytest.raises(ConfigurationError):
            create_microbench("gups", n=0)


class TestStreamTriad:
    @pytest.fixture(scope="class")
    def run(self):
        return full_pipeline(StreamTriad(n=1 << 14, iterations=3))

    def test_rw_ratio_is_two(self, run):
        result = run[0]
        # 2 reads (b, c) per 1 write (a)
        assert result.rw_ratio == pytest.approx(2.0, rel=0.01)

    def test_high_spatial_locality(self, run):
        scores = run[2]
        assert scores.spatial > 0.5

    def test_read_streams_read_only(self, run):
        result = run[0]
        assert result.metrics_by_name("b").read_only
        assert result.metrics_by_name("c").read_only
        a = result.metrics_by_name("a")
        assert a.reads == 0 and a.writes > 0


class TestGUPS:
    @pytest.fixture(scope="class")
    def run(self):
        # table must exceed the 1 MiB L2 for memory traffic to appear
        return full_pipeline(GUPS(n=1 << 18, iterations=3))

    def test_rw_ratio_is_one(self, run):
        result = run[0]
        assert result.rw_ratio == pytest.approx(1.0, rel=0.01)

    def test_poor_locality(self, run):
        scores = run[2]
        assert scores.spatial < 0.35

    def test_heavy_memory_traffic(self, run):
        cache = run[1]
        stats = cache.stats()
        # random RMW over a table >> L2: most accesses reach memory
        assert stats.llc_miss_rate > 0.3


class TestPointerChase:
    def test_serial_mlp(self):
        bench = PointerChase(n=1 << 16, iterations=2)
        result, cache, _, instructions, dep_frac = full_pipeline(bench)
        assert dep_frac > 0.9  # the chase declared its loads dependent
        sim = PerformanceSimulator()
        counts = sim.counts_from_run(instructions, cache, dependent_fraction=dep_frac)
        assert counts.mlp == pytest.approx(1.0, abs=0.3)

    def test_latency_sensitivity_extreme(self):
        bench = PointerChase(n=1 << 16, iterations=2)
        _, cache, _, instructions, dep_frac = full_pipeline(bench)
        sim = PerformanceSimulator()
        counts = sim.counts_from_run(instructions, cache,
                                     dependent_fraction=dep_frac)
        # low MLP makes the chase the most latency-sensitive workload here
        loss = sim.model.slowdown(counts, 100.0) - 1.0
        assert loss > 0.10


class TestStencil5:
    def test_prefetch_friendly(self):
        bench = Stencil5(n=1 << 14, iterations=2)
        cache = full_pipeline(bench)[1]
        miss_addrs = np.concatenate(
            [b.addr[~b.is_write].astype(np.int64) for b in cache.memory_trace]
        )
        stats = estimate_prefetch_coverage(miss_addrs)
        assert stats.coverage > 0.5

    def test_five_to_one_read_write(self):
        result = full_pipeline(Stencil5(n=1 << 14, iterations=2))[0]
        assert result.rw_ratio == pytest.approx(5.0, rel=0.05)
