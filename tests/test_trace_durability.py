"""Durable trace files: checksums, atomic writes, v1 compatibility."""

import os

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import (
    _MAGIC_V1,
    TraceReader,
    TraceWriter,
    read_trace,
    write_trace,
)
from repro.trace.record import AccessType, RefBatch


def make_batch(n, iteration=0):
    return RefBatch.from_access(
        np.arange(n, dtype=np.uint64) * 8, AccessType.READ, iteration=iteration)


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "trace.npz")
    write_trace(path, [make_batch(16, i) for i in range(3)])
    return path


def _corrupt_batch_payload(path, batch, byte_offset=3):
    """Flip one byte of one batch's stored addresses, keeping the stale CRC."""
    data = dict(np.load(path))
    arr = data[f"b{batch}_addr"].copy()
    arr.view(np.uint8)[byte_offset] ^= 0x40
    data[f"b{batch}_addr"] = arr
    np.savez_compressed(path, **data)


class TestChecksums:
    def test_roundtrip_is_v2_and_verifies(self, trace_path):
        with TraceReader(trace_path) as reader:
            assert reader.version == 2
            assert reader.verify() == 3

    def test_flipped_byte_detected_with_batch_index(self, trace_path):
        _corrupt_batch_payload(trace_path, batch=1)
        with pytest.raises(TraceError) as exc:
            read_trace(trace_path)
        assert exc.value.batch_index == 1
        assert "checksum" in str(exc.value)

    def test_batches_before_corruption_still_stream(self, trace_path):
        _corrupt_batch_payload(trace_path, batch=2)
        got = []
        with TraceReader(trace_path) as reader:
            with pytest.raises(TraceError):
                for batch in reader:
                    got.append(batch)
        assert len(got) == 2

    def test_verify_method_raises_on_corruption(self, trace_path):
        _corrupt_batch_payload(trace_path, batch=0)
        with TraceReader(trace_path) as reader:
            with pytest.raises(TraceError) as exc:
                reader.verify()
        assert exc.value.batch_index == 0


class TestBackwardCompatibility:
    def test_v1_file_without_checksums_loads(self, tmp_path):
        batch = make_batch(8)
        path = str(tmp_path / "v1.npz")
        np.savez_compressed(
            path,
            magic=np.array([_MAGIC_V1]),
            n_batches=np.array([1], dtype=np.int64),
            b0_addr=batch.addr,
            b0_w=batch.is_write,
            b0_sz=batch.size,
            b0_oid=batch.oid,
            b0_it=np.array([0], dtype=np.int64),
        )
        with TraceReader(path) as reader:
            assert reader.version == 1
            assert reader.verify() == 1
        (loaded,) = read_trace(path)
        assert loaded.addr.tolist() == batch.addr.tolist()


class TestCrashSafety:
    def test_close_leaves_no_tmp_file(self, tmp_path):
        path = str(tmp_path / "t.npz")
        with TraceWriter(path) as writer:
            writer.append(make_batch(4))
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_failed_close_never_touches_final_path(self, tmp_path):
        # First write a good archive, then make a close() fail mid-write:
        # the original file must survive intact and no .tmp may remain.
        path = str(tmp_path / "t.npz")
        write_trace(path, [make_batch(4)])
        before = open(path, "rb").read()

        writer = TraceWriter(path)
        writer.append(make_batch(9))
        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish time")

        os.replace = exploding_replace
        try:
            with pytest.raises(OSError):
                writer.close()
        finally:
            os.replace = real_replace
        assert open(path, "rb").read() == before
        assert not os.path.exists(path + ".tmp")
        (loaded,) = read_trace(path)
        assert len(loaded) == 4

    def test_not_a_trace_file_closes_handle(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez_compressed(path, magic=np.array(["something-else"]))
        with pytest.raises(TraceError, match="not an NV-SCAVENGER"):
            TraceReader(path)
        # the handle was closed, so the file is deletable even on platforms
        # with mandatory locking, and no ResourceWarning leaks
        os.unlink(path)

    def test_missing_file_is_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="cannot open"):
            TraceReader(str(tmp_path / "missing.npz"))
