"""Instrumented runtime: probe events, recording windows, access checks."""

import numpy as np
import pytest

from repro.errors import InstrumentationError
from repro.instrument.api import Probe
from repro.instrument.runtime import InstrumentedRuntime
from repro.trace.record import RefBatch


class RecordingProbe(Probe):
    """Captures every event for assertions."""

    def __init__(self):
        self.batches: list[RefBatch] = []
        self.allocs = []
        self.frees = []
        self.globals = []
        self.calls = []
        self.rets = []
        self.iterations = []
        self.finished = False

    def on_batch(self, batch):
        self.batches.append(batch)

    def on_alloc(self, obj):
        self.allocs.append(obj)

    def on_free(self, obj):
        self.frees.append(obj)

    def on_global(self, obj):
        self.globals.append(obj)

    def on_call(self, frame, obj):
        self.calls.append((frame.routine, obj.oid))

    def on_ret(self, frame):
        self.rets.append(frame.routine)

    def on_iteration(self, i):
        self.iterations.append(i)

    def on_finish(self):
        self.finished = True


@pytest.fixture
def rt_probe():
    probe = RecordingProbe()
    return InstrumentedRuntime(probe, buffer_capacity=64), probe


def test_load_store_reach_probe(rt_probe):
    rt, probe = rt_probe
    g = rt.global_array("g", 100)
    rt.store(g, np.arange(10))
    rt.load(g, np.arange(10))
    rt.finish()
    assert probe.finished
    total = sum(len(b) for b in probe.batches)
    assert total == 20
    writes = sum(b.n_writes for b in probe.batches)
    assert writes == 10


def test_addresses_are_in_object_range(rt_probe):
    rt, probe = rt_probe
    g = rt.global_array("g", 100, itemsize=8)
    rt.load(g, np.array([0, 99]))
    rt.finish()
    addrs = np.concatenate([b.addr for b in probe.batches])
    assert addrs[0] == g.base
    assert addrs[1] == g.base + 99 * 8
    assert all(g.obj.contains(int(a)) for a in addrs)


def test_repeat(rt_probe):
    rt, probe = rt_probe
    g = rt.global_array("g", 10)
    rt.load(g, np.arange(5), repeat=3)
    rt.finish()
    assert sum(len(b) for b in probe.batches) == 15


def test_repeat_invalid(rt_probe):
    rt, _ = rt_probe
    g = rt.global_array("g", 10)
    with pytest.raises(InstrumentationError):
        rt.load(g, np.arange(5), repeat=0)


def test_access_dead_object_raises(rt_probe):
    rt, _ = rt_probe
    h = rt.malloc(64, "x:1")
    rt.free(h)
    with pytest.raises(InstrumentationError):
        rt.load(h, np.arange(4))


def test_double_free_raises(rt_probe):
    rt, _ = rt_probe
    h = rt.malloc(64, "x:1")
    rt.free(h)
    with pytest.raises(InstrumentationError):
        rt.free(h)


def test_paused_recording_drops_refs_but_not_allocs(rt_probe):
    rt, probe = rt_probe
    g = rt.global_array("g", 100)
    with rt.paused_recording():
        rt.store(g, np.arange(50))
        h = rt.malloc(10, "x:1")  # allocation events still observed
    rt.load(g, np.arange(5))
    rt.finish()
    assert sum(len(b) for b in probe.batches) == 5
    assert len(probe.allocs) == 1


def test_call_events_and_flush_boundaries(rt_probe):
    rt, probe = rt_probe
    g = rt.global_array("g", 100)
    rt.load(g, np.arange(3))
    with rt.call("kernel", frame_bytes=256):
        loc = rt.local_array("tmp", 8)
        rt.store(loc, np.arange(8))
    rt.finish()
    assert probe.calls == [("kernel", loc.obj.oid)]
    assert probe.rets == ["kernel"]
    # the pre-call refs were flushed before the call event
    assert len(probe.batches[0]) == 3


def test_iteration_tagging(rt_probe):
    rt, probe = rt_probe
    g = rt.global_array("g", 10)
    rt.begin_iteration(1)
    rt.load(g, np.arange(4))
    rt.begin_iteration(2)
    rt.load(g, np.arange(6))
    rt.finish()
    tags = [(b.iteration, len(b)) for b in probe.batches]
    assert tags == [(1, 4), (2, 6)]
    assert probe.iterations == [1, 2]


def test_negative_iteration(rt_probe):
    rt, _ = rt_probe
    with pytest.raises(InstrumentationError):
        rt.begin_iteration(-1)


def test_realloc_returns_new_handle(rt_probe):
    rt, probe = rt_probe
    h = rt.malloc(64, "x:1")
    h2 = rt.realloc(h, 128, "x:1")
    assert h2.obj.alive
    assert len(probe.frees) == 1
    assert len(probe.allocs) == 2


def test_compute_counts_instructions(rt_probe):
    rt, _ = rt_probe
    rt.compute(100)
    rt.compute(50)
    assert rt.instruction_count == 150
    with pytest.raises(InstrumentationError):
        rt.compute(-1)


def test_common_block(rt_probe):
    rt, probe = rt_probe
    cb = rt.common_block("/blk/", [("a", 10), ("b", 10)])
    assert cb.n_elements == 20
    assert len(probe.globals) == 1
