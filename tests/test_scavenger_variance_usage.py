"""Variance (Figs 8-11) and usage (Fig 7) analyses."""

import numpy as np
import pytest

from repro.memory.object import ObjectKind
from repro.scavenger.metrics import ObjectMetrics
from repro.scavenger.object_stats import ObjectStatsTable
from repro.scavenger.usage import compute_usage
from repro.scavenger.variance import compute_variance


def fill_table(series):
    """series: {oid: [(reads, writes) per iteration 0..N]}"""
    t = ObjectStatsTable()
    for oid, per_iter in series.items():
        for it, (r, w) in enumerate(per_iter):
            oids = np.full(r + w, oid)
            is_w = np.array([False] * r + [True] * w)
            if len(oids):
                t.add_batch(oids, is_w, iteration=it)
            else:
                t.add_batch(np.empty(0, np.int32), np.empty(0, bool), iteration=it)
    return t


class TestVariance:
    def test_perfectly_stable_object(self):
        t = fill_table({0: [(0, 0), (100, 10), (100, 10), (100, 10)]})
        var = compute_variance(t)
        # all iterations in the [1,2) bin
        assert var.min_stable_fraction() == pytest.approx(1.0)
        assert var.n_objects == 1

    def test_doubling_ratio_leaves_stable_bin(self):
        t = fill_table({0: [(0, 0), (100, 10), (200, 10), (400, 10)]})
        var = compute_variance(t)
        # iteration 2: normalized rw = 2.0 -> [2,4) bin; rate = 210/110 < 2
        b_stable = int(np.searchsorted(var.bins, 1.0, side="right") - 1)
        assert var.rw_hist[b_stable, 1] == 0.0

    def test_read_only_both_iterations_counts_stable(self):
        t = fill_table({0: [(0, 0), (50, 0), (50, 0)]})
        var = compute_variance(t)
        assert var.min_stable_fraction() == pytest.approx(1.0)

    def test_object_missing_iteration1_excluded(self):
        t = fill_table({0: [(0, 0), (0, 0), (10, 0)], 1: [(0, 0), (10, 0), (10, 0)]})
        var = compute_variance(t)
        assert var.n_objects == 1

    def test_eligible_filter(self):
        t = fill_table({0: [(0, 0), (10, 1), (10, 1)], 1: [(0, 0), (10, 1), (10, 1)]})
        var = compute_variance(t, eligible_oids=np.array([1]))
        assert var.n_objects == 1

    def test_too_few_iterations(self):
        t = fill_table({0: [(5, 5)]})
        var = compute_variance(t)
        assert var.n_objects == 0
        assert var.rw_hist.shape[1] == 0

    def test_histogram_columns_sum_to_one(self):
        t = fill_table(
            {
                0: [(0, 0), (10, 2), (30, 2), (10, 8)],
                1: [(0, 0), (100, 1), (100, 1), (5, 1)],
            }
        )
        var = compute_variance(t)
        assert np.allclose(var.rw_hist.sum(axis=0), 1.0)
        assert np.allclose(var.rate_hist.sum(axis=0), 1.0)


def make_row(oid, size, touched):
    return ObjectMetrics(
        oid=oid,
        name=f"o{oid}",
        kind=ObjectKind.GLOBAL,
        size=size,
        base=oid * 0x1000,
        reads=touched,
        writes=0,
        reference_rate=0.0,
        write_share=0.0,
        reads_per_iter=np.zeros(11, np.int64),
        writes_per_iter=np.zeros(11, np.int64),
        iterations_touched=touched,
    )


class TestUsage:
    def test_cumulative_semantics(self):
        rows = [make_row(0, 100, 0), make_row(1, 50, 3), make_row(2, 200, 10)]
        u = compute_usage(rows)
        assert u.iteration_counts.tolist() == [0, 3, 10]
        assert u.cumulative_bytes.tolist() == [100, 150, 350]
        assert u.unused_in_main_loop_bytes == 100
        assert u.unused_fraction == pytest.approx(100 / 350)

    def test_exclusion_of_short_term(self):
        rows = [make_row(0, 100, 0), make_row(1, 50, 5)]
        u = compute_usage(rows, exclude_oids={1})
        assert u.total_bytes == 100
        assert u.n_objects == 1

    def test_evenness(self):
        rows = [make_row(0, 100, 10), make_row(1, 100, 10), make_row(2, 50, 2)]
        u = compute_usage(rows)
        assert u.evenness(10) == pytest.approx(200 / 250)
        assert u.evenness(11) == 0.0

    def test_no_unused_mass(self):
        rows = [make_row(0, 100, 5)]
        u = compute_usage(rows)
        assert u.unused_in_main_loop_bytes == 0

    def test_empty(self):
        u = compute_usage([])
        assert u.total_bytes == 0
        assert u.unused_fraction == 0.0

    def test_mb_series(self):
        rows = [make_row(0, 2 * 1024 * 1024, 1)]
        xs, mb = u = compute_usage(rows).as_mb_series()
        assert mb[0] == pytest.approx(2.0)
