"""Row policies and address-mapping schemes (the controller's §IV knobs)."""

import numpy as np
import pytest

from repro.nvram.technology import DRAM_DDR3, PCRAM
from repro.powersim.addressing import SCHEMES, AddressMapping
from repro.powersim.config import TABLE3_DEVICE
from repro.powersim.controller import MemoryController
from repro.trace.record import AccessType, RefBatch


def batch(lines, write=False):
    return RefBatch.from_access(
        np.asarray(lines, dtype=np.uint64) * 64,
        AccessType.WRITE if write else AccessType.READ,
    )


class TestMappingSchemes:
    def test_both_schemes_decode_in_range(self):
        for scheme in SCHEMES:
            m = AddressMapping(TABLE3_DEVICE, scheme=scheme)
            addrs = np.arange(0, 1 << 22, 8192, dtype=np.uint64)
            rank, bank, row, col = m.decode_batch(addrs)
            assert int(rank.max()) < TABLE3_DEVICE.n_ranks
            assert int(bank.max()) < TABLE3_DEVICE.n_banks

    def test_bank_interleaved_scheme_spreads_consecutive_lines(self):
        m = AddressMapping(TABLE3_DEVICE, scheme="row:col:rank:bank")
        a = m.decode(0)
        b = m.decode(64)
        assert (a.rank, a.bank) != (b.rank, b.bank)

    def test_row_major_scheme_keeps_consecutive_lines_in_row(self):
        m = AddressMapping(TABLE3_DEVICE, scheme="row:rank:bank:col")
        a = m.decode(0)
        b = m.decode(64)
        assert (a.rank, a.bank, a.row) == (b.rank, b.bank, b.row)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            AddressMapping(TABLE3_DEVICE, scheme="bank:first")

    def test_schemes_are_injective(self):
        for scheme in SCHEMES:
            m = AddressMapping(TABLE3_DEVICE, scheme=scheme)
            addrs = (np.arange(4096, dtype=np.uint64)) * 64
            r, b, row, c = m.decode_batch(addrs)
            assert len(set(zip(r.tolist(), b.tolist(), row.tolist(), c.tolist()))) == 4096


class TestRowPolicy:
    def test_open_policy_hits_on_reuse(self):
        ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3, row_policy="open")
        ctl.process_batch(batch([0, 1, 2]))
        assert ctl.stats.row_hits == 2

    def test_closed_policy_never_hits(self):
        ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3, row_policy="closed")
        ctl.process_batch(batch([0, 1, 2]))
        assert ctl.stats.row_hits == 0
        assert ctl.stats.row_misses == 3
        # an auto-precharge after every access
        assert ctl.stats.precharges == 3

    def test_closed_policy_slower_on_streaming(self):
        open_ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3, row_policy="open")
        closed_ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3, row_policy="closed")
        lines = list(range(512))
        open_ctl.process_batch(batch(lines))
        closed_ctl.process_batch(batch(lines))
        # streaming loves open rows; closed pays an activate per access,
        # visible as more activations (time may hide behind bank overlap)
        assert closed_ctl.activation_count() > open_ctl.activation_count()

    def test_closed_policy_dirty_row_writes_back(self):
        ctl = MemoryController(TABLE3_DEVICE, PCRAM, row_policy="closed")
        ctl.process_batch(batch([0], write=True))
        # bank stays busy through the array write-back after auto-precharge
        assert float(ctl.banks.busy_until.max()) > ctl.stats.elapsed_ns - 1e-9
        assert not ctl.banks.dirty.any()

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            MemoryController(TABLE3_DEVICE, DRAM_DDR3, row_policy="adaptive")

    def test_interleaved_mapping_raises_bank_parallelism(self):
        """With bank-interleaved mapping, PCRAM's dirty-close penalties land
        on different banks and overlap: streaming writes finish sooner."""
        row_major = MemoryController(TABLE3_DEVICE, PCRAM,
                                     mapping_scheme="row:rank:bank:col",
                                     row_policy="closed")
        interleaved = MemoryController(TABLE3_DEVICE, PCRAM,
                                       mapping_scheme="row:col:rank:bank",
                                       row_policy="closed")
        lines = list(range(2048))
        row_major.process_batch(batch(lines, write=True))
        interleaved.process_batch(batch(lines, write=True))
        assert interleaved.elapsed_ns <= row_major.elapsed_ns
