"""Model applications: spec validation and calibrated paper statistics.

These are the acceptance tests for the reproduction targets listed in
DESIGN.md §5 — they pin the *shape* of the paper's results, not exact
numbers.
"""

import numpy as np
import pytest

from repro.apps import APPLICATIONS, CAM, GTC, Nek5000, create_app
from repro.apps.base import AppInfo, ModelApp, RoutineSpec, StructureSpec
from repro.errors import ConfigurationError
from repro.scavenger.metrics import high_rw_bytes, read_only_bytes
from tests.conftest import make_app


class TestRegistry:
    def test_four_apps(self):
        assert set(APPLICATIONS) == {"nek5000", "cam", "gtc", "s3d"}

    def test_create_by_name(self):
        app = create_app("CAM")
        assert isinstance(app, CAM)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            create_app("lammps")

    def test_table1_metadata(self):
        footprints = {
            "nek5000": 824.0, "cam": 608.0, "gtc": 218.0, "s3d": 512.0,
        }
        for name, cls in APPLICATIONS.items():
            assert cls.info.paper_footprint_mb == footprints[name]
            assert cls.info.description


class TestSpecValidation:
    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            Nek5000(scale=0)

    def test_bad_refs(self):
        with pytest.raises(ConfigurationError):
            GTC(refs_per_iteration=0)

    def test_bad_structure_spec(self):
        with pytest.raises(ConfigurationError):
            StructureSpec("x", "global", 0.1, reads=1, writes=1, phase="warmup")
        with pytest.raises(ConfigurationError):
            StructureSpec("x", "global", 0.1, reads=1, writes=1, short_term=True)

    def test_bad_routine_spec(self):
        with pytest.raises(ConfigurationError):
            RoutineSpec("r", local_kb=0, reads=1, writes=1)

    def test_duplicate_names_rejected(self):
        class Dup(ModelApp):
            info = AppInfo("dup", "x", "x", 1.0)
            structures = (StructureSpec("same", "global", 0.5, reads=1, writes=0),)
            routines = (RoutineSpec("same", local_kb=1, reads=1, writes=1),)

        with pytest.raises(ConfigurationError):
            Dup()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        from repro.instrument.api import FanoutProbe, Probe
        from repro.instrument.runtime import InstrumentedRuntime

        class Hash(Probe):
            def __init__(self):
                self.acc = 0
                self.n = 0

            def on_batch(self, b):
                self.acc ^= int(np.bitwise_xor.reduce(b.addr))
                self.n += len(b)

        def run(seed):
            h = Hash()
            rt = InstrumentedRuntime(FanoutProbe([h]))
            make_app("gtc", refs=3000, iters=3, seed=seed)(rt)
            rt.finish()
            return h.acc, h.n

        assert run(1) == run(1)
        assert run(1) != run(2)  # random-pattern apps differ by seed


@pytest.mark.parametrize("name", sorted(APPLICATIONS))
class TestAllAppsRun:
    def test_runs_and_produces_traffic(self, name, analyzed_apps):
        app, res, probe, instructions = analyzed_apps[name]
        assert res.total_refs > 0
        assert instructions > 0
        assert len(res.object_metrics) >= 5
        assert len(res.frame_stats) >= 3
        assert probe.stats().memory_accesses > 0

    def test_footprint_tracks_scale(self, name, analyzed_apps):
        app, res, _, _ = analyzed_apps[name]
        target = app.footprint_bytes
        assert 0.5 * target < res.footprint_bytes < 2.0 * target


class TestTable5Calibration:
    TARGETS = {
        "nek5000": (6.33, 0.756),
        "cam": (20.39, 0.763),
        "gtc": (3.48, 0.443),
        "s3d": (6.04, 0.631),
    }

    @pytest.mark.parametrize("name", sorted(TARGETS))
    def test_rw_ratio_and_share(self, name, analyzed_apps):
        _, res, _, _ = analyzed_apps[name]
        t_rw, t_pct = self.TARGETS[name]
        rw = res.stack_summary.rw_ratio(skip_first=(name == "cam"))
        pct = res.stack_summary.reference_percentage
        assert rw == pytest.approx(t_rw, rel=0.10)
        assert pct == pytest.approx(t_pct, abs=0.03)

    def test_ordering(self, analyzed_apps):
        rws = {
            n: analyzed_apps[n][1].stack_summary.rw_ratio(skip_first=(n == "cam"))
            for n in self.TARGETS
        }
        assert rws["cam"] > rws["nek5000"] > rws["gtc"]
        assert rws["cam"] > rws["s3d"] > rws["gtc"]

    def test_cam_first_iteration_lower(self, analyzed_apps):
        _, res, _, _ = analyzed_apps["cam"]
        assert res.stack_summary.rw_ratio(iteration=1) < res.stack_summary.rw_ratio(
            skip_first=True
        ) * 0.75


class TestFig2Calibration:
    def test_cam_stack_population(self, analyzed_apps):
        _, res, _, _ = analyzed_apps["cam"]
        frames = [f for f in res.frame_stats if f.refs > 0]
        n = len(frames)
        gt10 = [f for f in frames if f.rw_ratio > 10]
        gt50 = [f for f in frames if f.rw_ratio > 50]
        assert len(gt10) / n == pytest.approx(0.433, abs=0.08)
        assert sum(f.reference_rate for f in gt10) == pytest.approx(0.689, abs=0.05)
        assert 1 <= len(gt50) <= max(1, int(0.08 * n))
        assert sum(f.reference_rate for f in gt50) == pytest.approx(0.089, abs=0.03)

    def test_cam_exemplar_routines_exist(self, analyzed_apps):
        _, res, _, _ = analyzed_apps["cam"]
        names = {f.routine for f in res.frame_stats}
        assert {"interp_coefficients", "temporal_results_buffer",
                "dependent_constants"} <= names


class TestFig3to6Calibration:
    def test_read_only_masses(self, analyzed_apps):
        fractions = {}
        for name in ("nek5000", "cam"):
            _, res, _, _ = analyzed_apps[name]
            fp = sum(m.size for m in res.object_metrics)
            fractions[name] = read_only_bytes(res.object_metrics) / fp
        assert fractions["nek5000"] == pytest.approx(0.071, abs=0.02)
        assert fractions["cam"] == pytest.approx(0.155, abs=0.03)

    def test_high_rw_masses(self, analyzed_apps):
        _, nek, _, _ = analyzed_apps["nek5000"]
        fp = sum(m.size for m in nek.object_metrics)
        assert high_rw_bytes(nek.object_metrics) / fp == pytest.approx(0.047, abs=0.015)

    def test_gtc_is_write_heavy_outlier(self, analyzed_apps):
        """Except for GTC, most objects have r/w > 1 (paper §VII-B)."""
        for name in ("nek5000", "cam", "s3d"):
            _, res, _, _ = analyzed_apps[name]
            touched = [m for m in res.object_metrics if m.refs > 0]
            gt1 = sum(1 for m in touched if m.read_only or m.rw_ratio > 1)
            assert gt1 / len(touched) > 0.6, name
        _, gtc, _, _ = analyzed_apps["gtc"]
        touched = [m for m in gtc.object_metrics if m.refs > 0]
        le1 = sum(1 for m in touched if not m.read_only and m.rw_ratio <= 1.3)
        assert le1 / len(touched) > 0.4


class TestFig7Calibration:
    def test_unused_fractions(self, analyzed_apps):
        targets = {"nek5000": 0.243, "cam": 0.115, "s3d": 0.014}
        for name, target in targets.items():
            _, res, _, _ = analyzed_apps[name]
            assert res.usage.unused_fraction == pytest.approx(target, abs=0.03), name

    def test_gtc_evenly_touched(self, analyzed_apps):
        _, res, _, _ = analyzed_apps["gtc"]
        assert res.usage.unused_fraction < 0.02
        assert res.usage.evenness(10) > 0.9


class TestFig8to11Calibration:
    def test_stability_above_60_percent(self, analyzed_apps):
        for name in APPLICATIONS:
            _, res, _, _ = analyzed_apps[name]
            assert res.variance.min_stable_fraction() > 0.60, name

    def test_nek_is_noisiest(self, analyzed_apps):
        stables = {
            n: analyzed_apps[n][1].variance.min_stable_fraction() for n in APPLICATIONS
        }
        assert min(stables, key=stables.get) == "nek5000"
        assert stables["s3d"] > 0.95
        assert stables["gtc"] > 0.95
