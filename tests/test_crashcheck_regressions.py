"""Minimal reproducer schedules for every durability fix.

Each test pins one fsync the crash checker proved necessary. The
assertions fail if the fix is ever reverted, in two independent ways:

* the named operation must already be *durable* at the moment the
  protocol acknowledges its promise (``is_durable`` at the mark's crash
  index) — remove the covering fsync and the coverage computation says
  so directly;
* the minimal schedule that reproduced the original violation must
  recover clean — without the fix the dropped entry becomes pending
  again, the materialized crash state loses it, and the protocol's own
  recovery path reports the broken invariant.

The schedules here are the checker's minimized counterexamples from
the pre-fix code, re-expressed against op labels so they survive
workload-size changes.
"""

import pytest

from repro.crashcheck import PROTOCOLS, Schedule, record_log
from repro.crashcheck.checker import _recover_fails
from repro.crashcheck.protocols import _ART_KEYS


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded workload per protocol, shared across this module."""
    cache = {}

    def get(name):
        if name not in cache:
            td = tmp_path_factory.mktemp(f"rec-{name}")
            cache[name] = (PROTOCOLS[name], *record_log(PROTOCOLS[name],
                                                        str(td)))
        return cache[name]

    return get


def assert_schedule_recovers(tmp_path, spec, log, marks, schedule):
    scratch = str(tmp_path / "state")
    msg = _recover_fails(spec, log, schedule,
                         marks.acked(schedule.crash_index), scratch)
    assert msg is None, f"reverted fix reproduces: {msg}"


# ----------------------------------------------------------------------
def test_journal_file_entry_fsynced_before_first_ack(recorded, tmp_path):
    """RunJournal._handle: a brand-new journal file's directory entry is
    fsync'd before the first append can be acknowledged; the run-dir
    chain is fsync'd at open. Pre-fix, dropping the creat and the run
    directories erased every acked record."""
    spec, log, marks = recorded("journal")
    k = next(m.op_index for m in marks.marks if m.label == "append")
    creat = log.find_op("creat", "journal.jsonl")
    run_mkdirs = [log.find_op("mkdir", "runs"),
                  log.find_op("mkdir", "crashcheck-run")]
    for op in (creat, *run_mkdirs):
        assert log.is_durable(op.index, k), (
            f"{op.label} not durable when the first append was acked")
    schedule = Schedule(crash_index=k, drops=tuple(sorted(
        op.index for op in (creat, *run_mkdirs))))
    assert_schedule_recovers(tmp_path, spec, log, marks, schedule)


def test_fence_directory_entry_fsynced_in_parent(recorded, tmp_path):
    """write_fence: when the fence directory is brand new, its entry in
    the parent is fsync'd before the first epoch returns. Pre-fix, a
    crash dropped the whole directory and the fence regressed to 0."""
    spec, log, marks = recorded("fence")
    k = next(m.op_index for m in marks.marks if m.label == "fenced")
    mkdir = log.find_op("mkdir", "fences")
    assert log.is_durable(mkdir.index, k), (
        "fence dir entry not durable when epoch 1 was acked")
    schedule = Schedule(crash_index=k, drops=(mkdir.index,))
    assert_schedule_recovers(tmp_path, spec, log, marks, schedule)


def test_queue_dir_chain_fsynced_at_init(recorded, tmp_path):
    """WorkQueue.init_dirs: the queue/tasks/leases/fence/results chain
    is fsync'd up to the cache root. Pre-fix, dropping the results/
    mkdir took every acked result with it."""
    spec, log, marks = recorded("queue")
    k = next(m.op_index for m in marks.marks if m.label == "result")
    results = log.find_op("mkdir", "results")
    queue_dir = log.find_op("mkdir", "queue")
    for op in (results, queue_dir):
        assert log.is_durable(op.index, k), (
            f"{op.label} not durable when the first result was acked")
    schedule = Schedule(crash_index=k, drops=(results.index,))
    assert_schedule_recovers(tmp_path, spec, log, marks, schedule)


def test_artifact_inplace_commit_fsyncs_shard_chain(recorded, tmp_path):
    """PendingArtifact.commit (in-place): after the commit marker, the
    shard directory and the cache root are fsync'd so the freshly
    created directory chain cannot evaporate. Pre-fix, dropping the
    shard mkdir made an acked commit invisible."""
    spec, log, marks = recorded("artifact")
    committed = [m for m in marks.marks if m.label == "committed"]
    k = committed[0].op_index
    shard = log.find_op("mkdir", _ART_KEYS[0][:2])
    key_dir = log.find_op("mkdir", _ART_KEYS[0])
    for op in (shard, key_dir):
        assert log.is_durable(op.index, k), (
            f"{op.label} not durable when the in-place commit was acked")
    schedule = Schedule(crash_index=k, drops=(shard.index,))
    assert_schedule_recovers(tmp_path, spec, log, marks, schedule)


def test_artifact_staged_publish_fsyncs_stage_dir_first(recorded,
                                                        tmp_path):
    """PendingArtifact._publish_stage: the stage directory's entries
    (the tmp→final renames of meta/events/refs) are fsync'd before the
    stage inode is renamed into place. Pre-fix, the publish rename
    could land while the meta.json rename inside the stage was lost —
    a committed-looking artifact with its commit marker missing."""
    spec, log, marks = recorded("artifact")
    committed = [m for m in marks.marks if m.label == "committed"]
    k = committed[1].op_index
    meta_rename = log.find_op("rename", "meta.json", nth=1)
    assert log.is_durable(meta_rename.index, k), (
        "staged meta.json rename not durable when the publish was acked")
    schedule = Schedule(crash_index=k, drops=(meta_rename.index,))
    assert_schedule_recovers(tmp_path, spec, log, marks, schedule)
