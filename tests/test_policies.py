"""Policy zoo: registry contract, per-policy behavior, determinism.

The distinguishability assertions mirror the sweep's acceptance
criteria: on the KV-cache workload, threshold migration must absorb
strictly less NVM write traffic than the do-nothing baseline, and the
endurance-aware policy must never let any page exceed its wear budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PolicyError
from repro.experiments.common import ExperimentContext
from repro.experiments.policy_zoo import _budget
from repro.hybrid.pagemap import MemoryPool
from repro.nvram.technology import PCRAM, STTRAM
from repro.policies import (
    POLICIES,
    ObjectSpan,
    PlacementPolicy,
    PolicyCellStats,
    available_policies,
    cell_key,
    create_policy,
    evaluate_policy,
    register_policy,
)

EXPECTED = {"no_migration", "static_oracle", "threshold", "predictive",
            "endurance_aware"}


@pytest.fixture(scope="module")
def kv_run(tmp_path_factory):
    """One recorded KV-cache workload at test fidelity."""
    ctx = ExperimentContext(
        refs_per_iteration=6_000, scale=1.0 / 256.0, apps=(),
        cache_dir=str(tmp_path_factory.mktemp("policies-cache")))
    return ctx.run("workload:kvcache")


def cell(kv_run, policy_name, device=PCRAM, factor=2.0, **params):
    run = kv_run
    objects = [ObjectSpan(m.oid, m.name, m.base, m.size)
               for m in run.result.object_metrics]
    trace = run.memory_trace
    budget = _budget(trace, objects, factor)
    policy = create_policy(policy_name, **params)
    return evaluate_policy(
        policy, trace, objects, device, budget,
        classified=run.result.classified, workload="kvcache")


class TestRegistry:
    def test_zoo_is_registered(self):
        assert set(POLICIES) == EXPECTED
        assert list(available_policies()) == sorted(EXPECTED)

    def test_unknown_policy(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            create_policy("nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(PolicyError, match="duplicate"):
            @register_policy
            class Clash(PlacementPolicy):  # pragma: no cover - never bound
                name = "no_migration"

                def prepare(self):
                    pass

        assert POLICIES["no_migration"].__name__ == "NoMigration"

    def test_unnamed_policy_rejected(self):
        with pytest.raises(PolicyError, match="no registry name"):
            @register_policy
            class Anonymous(PlacementPolicy):  # pragma: no cover
                def prepare(self):
                    pass

    @pytest.mark.parametrize("name, params", [
        ("no_migration", {"home": "tape"}),
        ("static_oracle", {"capacity_fraction": 1.5}),
        ("threshold", {"write_hot": 0}),
        ("threshold", {"hysteresis": 1.0}),
        ("predictive", {"alpha": 0.0}),
        ("predictive", {"demote_margin": -0.1}),
        ("endurance_aware", {"decay": 1.0}),
    ])
    def test_invalid_params(self, name, params):
        with pytest.raises(PolicyError):
            create_policy(name, **params)

    def test_params_are_canonical(self):
        p = create_policy("threshold", decay=0.25, write_hot=4.0)
        assert p.params() == {"decay": 0.25, "hysteresis": 0.25,
                              "write_hot": 4.0}


class TestHelpers:
    def test_page_counts_empty(self):
        assert PlacementPolicy.page_counts(np.empty(0, np.uint64), 4096) == ([], [])

    def test_page_counts(self):
        addrs = np.array([0, 100, 4096, 4097, 8192], dtype=np.uint64)
        pages, counts = PlacementPolicy.page_counts(addrs, 4096)
        assert pages == [0, 1, 2]
        assert counts == [2, 2, 1]

    def test_cell_key_shape_and_sensitivity(self):
        a = cell_key("spec", "threshold", {"write_hot": 8.0}, "PCRAM", 10)
        b = cell_key("spec", "threshold", {"write_hot": 9.0}, "PCRAM", 10)
        c = cell_key("spec", "threshold", {"write_hot": 8.0}, "STTRAM", 10)
        assert len(a) == 64 and int(a, 16) >= 0
        assert len({a, b, c}) == 3


class TestCellStats:
    def test_hand_computed_properties(self):
        s = PolicyCellStats(
            policy="p", workload="w", device="PCRAM", endurance_budget=10,
            accesses=100, dram_accesses=75, nvm_reads=15, nvm_writes=10,
            nvm_fill_writes=64, to_dram=2, to_nvram=1, max_page_wear=4,
            energy_nj=80.0, baseline_energy_nj=100.0)
        assert s.migrations == 3
        assert s.nvm_write_traffic == 74
        assert s.dram_hit_ratio == pytest.approx(0.75)
        assert s.endurance_headroom == pytest.approx(0.6)
        assert s.energy_savings == pytest.approx(0.2)

    def test_empty_and_degenerate(self):
        s = PolicyCellStats("p", "w", "PCRAM", endurance_budget=0)
        assert s.dram_hit_ratio == 0.0
        assert s.endurance_headroom == 0.0
        assert s.energy_savings == 0.0

    def test_row_is_plain_types(self):
        s = PolicyCellStats("p", "w", "PCRAM", endurance_budget=3,
                            accesses=7, dram_accesses=2)
        row = s.as_row()
        for value in row.values():
            assert isinstance(value, (str, int, float, dict))


class TestPolicies:
    def test_no_migration_dram_home_never_touches_nvm(self, kv_run):
        s = cell(kv_run, "no_migration", home="dram")
        assert s.nvm_write_traffic == 0
        assert s.nvm_reads == 0
        assert s.migrations == 0
        assert s.dram_hit_ratio == pytest.approx(1.0)

    def test_no_migration_nvram_home_takes_all_object_traffic(self, kv_run):
        s = cell(kv_run, "no_migration")
        assert s.migrations == 0
        assert s.nvm_write_traffic > 0
        # stacks are unmapped (DRAM); object traffic dominates this app
        assert s.dram_hit_ratio < 0.1

    def test_static_oracle_needs_classifications(self, kv_run):
        run = kv_run
        objects = [ObjectSpan(m.oid, m.name, m.base, m.size)
                   for m in run.result.object_metrics]
        with pytest.raises(PolicyError, match="classifications"):
            evaluate_policy(create_policy("static_oracle"), run.memory_trace,
                            objects, PCRAM, 10, classified=None)

    def test_static_oracle_category1_is_write_clean(self, kv_run):
        pcram = cell(kv_run, "static_oracle", device=PCRAM)
        sttram = cell(kv_run, "static_oracle", device=STTRAM)
        base = cell(kv_run, "no_migration")
        # category 1 admits only write-free objects: nearly no NVM writes
        assert pcram.nvm_write_traffic < base.nvm_write_traffic / 100
        assert pcram.dram_hit_ratio > 0.9
        # category 2 admits read-leaning objects too, so it absorbs more
        assert sttram.nvm_write_traffic >= pcram.nvm_write_traffic
        assert sttram.nvram_resident_bytes >= pcram.nvram_resident_bytes

    def test_threshold_beats_no_migration_on_kvcache(self, kv_run):
        base = cell(kv_run, "no_migration")
        thr = cell(kv_run, "threshold")
        assert thr.migrations > 0
        assert thr.to_dram > 0
        # the acceptance criterion: strictly fewer NVM writes
        assert thr.nvm_write_traffic < base.nvm_write_traffic
        assert thr.dram_hit_ratio > base.dram_hit_ratio

    def test_predictive_is_distinguishable(self, kv_run):
        thr = cell(kv_run, "threshold")
        pred = cell(kv_run, "predictive")
        assert pred.policy == "predictive"
        rows = (thr.as_row(), pred.as_row())
        assert rows[0]["nvm_write_traffic"] != rows[1]["nvm_write_traffic"]

    @pytest.mark.parametrize("factor", [2.0, 64.0])
    def test_endurance_budget_is_an_invariant(self, kv_run, factor):
        s = cell(kv_run, "endurance_aware", factor=factor)
        assert s.max_page_wear <= s.endurance_budget
        assert s.endurance_headroom >= 0.0

    def test_endurance_never_fills_into_nvm(self, kv_run):
        s = cell(kv_run, "endurance_aware")
        assert s.to_nvram == 0
        assert s.nvm_fill_writes == 0

    def test_no_migration_can_exceed_tight_budget(self, kv_run):
        # the guard in endurance_aware is doing real work: without it the
        # same trace blows through the tight budget
        s = cell(kv_run, "no_migration", factor=2.0)
        assert s.max_page_wear > s.endurance_budget

    def test_all_policies_distinguishable(self, kv_run):
        rows = [cell(kv_run, name).as_row() for name in sorted(EXPECTED)]
        fingerprints = {(r["nvm_write_traffic"], r["migrations"],
                         r["dram_hit_ratio"]) for r in rows}
        assert len(fingerprints) == len(EXPECTED)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_same_cell_same_row(self, kv_run, name):
        a = cell(kv_run, name).as_row()
        b = cell(kv_run, name).as_row()
        assert a == b

    def test_rebind_resets_state(self, kv_run):
        run = kv_run
        objects = [ObjectSpan(m.oid, m.name, m.base, m.size)
                   for m in run.result.object_metrics]
        trace = run.memory_trace
        budget = _budget(trace, objects, 2.0)
        policy = create_policy("threshold")
        first = evaluate_policy(policy, trace, objects, PCRAM, budget)
        second = evaluate_policy(policy, trace, objects, PCRAM, budget)
        assert first.as_row() == second.as_row()


class TestPlacementAccounting:
    def test_migrate_counts_and_wear(self, kv_run):
        run = kv_run
        objects = [ObjectSpan(m.oid, m.name, m.base, m.size)
                   for m in run.result.object_metrics]
        policy = create_policy("no_migration", home="dram")
        evaluate_policy(policy, run.memory_trace[:1], objects, PCRAM, 10)
        page = objects[0].base // 4096
        assert policy.migrate(page, MemoryPool.NVRAM)
        assert not policy.migrate(page, MemoryPool.NVRAM)  # already there
        assert policy.to_nvram == 1
        assert policy.bytes_moved == 4096
        assert policy.ctx.wear[page] == 1  # the fill wore the page once
