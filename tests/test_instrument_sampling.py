"""SamplingProbe: window forwarding and the paper's loss-of-objects claim."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.instrument.api import Probe
from repro.instrument.sampling import SamplingProbe
from repro.trace.record import AccessType, RefBatch


class Counter(Probe):
    def __init__(self):
        self.refs = 0
        self.oids = set()
        self.allocs = 0

    def on_batch(self, batch):
        self.refs += len(batch)
        self.oids.update(np.unique(batch.oid).tolist())

    def on_alloc(self, obj):
        self.allocs += 1


def make_batch(n, oid=0):
    return RefBatch.from_access(np.arange(n, dtype=np.uint64), AccessType.READ, oid=oid)


def test_forwards_exact_fraction():
    c = Counter()
    s = SamplingProbe(c, period_refs=10, sample_refs=3)
    s.on_batch(make_batch(100))
    assert c.refs == 30
    assert s.refs_in == 100 and s.refs_out == 30
    assert s.sampling_fraction == pytest.approx(0.3)


def test_windows_span_batches():
    c = Counter()
    s = SamplingProbe(c, period_refs=10, sample_refs=5)
    for _ in range(10):
        s.on_batch(make_batch(3))
    assert c.refs == 15  # half of 30


def test_full_sampling_is_identity():
    c = Counter()
    s = SamplingProbe(c, period_refs=5, sample_refs=5)
    s.on_batch(make_batch(23))
    assert c.refs == 23


def test_loses_objects_outside_window():
    """The paper's rejection argument: objects whose accesses fall outside
    sample windows lose ALL access information."""
    c = Counter()
    s = SamplingProbe(c, period_refs=100, sample_refs=10)
    s.on_batch(make_batch(10, oid=1))  # inside the window
    s.on_batch(make_batch(80, oid=2))  # entirely outside
    s.on_batch(make_batch(30, oid=3))  # next window starts at ref 100
    assert 1 in c.oids
    assert 2 not in c.oids  # lost
    assert 3 in c.oids


def test_non_reference_events_always_forwarded():
    c = Counter()
    s = SamplingProbe(c, period_refs=100, sample_refs=1)

    class Obj:
        pass

    s.on_alloc(Obj())
    assert c.allocs == 1


@pytest.mark.parametrize("period,window", [(0, 1), (10, 0), (5, 10)])
def test_invalid_config(period, window):
    with pytest.raises(ConfigurationError):
        SamplingProbe(Counter(), period, window)
