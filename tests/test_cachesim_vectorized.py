"""Differential tests: vectorized CacheHierarchy vs the scalar reference.

The vectorized simulator must be *bit-identical* to
:class:`~repro.cachesim.reference.ReferenceCacheHierarchy` — same
per-level hit/miss/writeback counts, same emitted memory trace (addresses,
read/write flags, oids) in the same order, including the end-of-run flush.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import (
    CacheHierarchy,
    ReferenceCacheHierarchy,
    TABLE2_CONFIG,
    reference_impl,
)
from repro.cachesim.config import CacheHierarchyConfig, CacheLevelConfig
from repro.trace.record import RefBatch
from repro.util.rng import make_rng

STAT_FIELDS = ("read_hits", "read_misses", "write_hits", "write_misses", "writebacks")


def _level(name, size_kb, assoc, write_allocate, line=64):
    return CacheLevelConfig(
        name=name,
        size_bytes=size_kb * 1024,
        associativity=assoc,
        line_bytes=line,
        write_allocate=write_allocate,
    )


def _batches(rng, n_batches, n, span, write_ratio, hot=False):
    out = []
    for it in range(n_batches):
        if hot:
            # hammer a handful of lines that all collide in a few sets
            addr = rng.integers(0, 40, n, dtype=np.uint64) * np.uint64(64 * 128)
        else:
            addr = rng.integers(0, span, n, dtype=np.uint64)
        out.append(
            RefBatch(
                addr=addr,
                is_write=rng.random(n) < write_ratio,
                size=np.full(n, 8, np.uint8),
                oid=rng.integers(-1, 50, n, dtype=np.int32),
                iteration=it,
            )
        )
    return out


def _assert_equivalent(config, batches):
    ref = ReferenceCacheHierarchy(config)
    vec = CacheHierarchy(config)
    for batch in batches:
        mem_ref = ref.process_batch(batch)
        mem_vec = vec.process_batch(batch)
        np.testing.assert_array_equal(mem_ref.addr, mem_vec.addr)
        np.testing.assert_array_equal(mem_ref.is_write, mem_vec.is_write)
        np.testing.assert_array_equal(mem_ref.oid, mem_vec.oid)
    flush_ref = ref.flush()
    flush_vec = vec.flush()
    np.testing.assert_array_equal(flush_ref.addr, flush_vec.addr)
    np.testing.assert_array_equal(flush_ref.is_write, flush_vec.is_write)
    np.testing.assert_array_equal(flush_ref.oid, flush_vec.oid)
    s_ref, s_vec = ref.stats(), vec.stats()
    assert s_ref.refs == s_vec.refs
    assert s_ref.memory_reads == s_vec.memory_reads
    assert s_ref.memory_writes == s_vec.memory_writes
    assert s_ref.levels.keys() == s_vec.levels.keys()
    for name in s_ref.levels:
        for field in STAT_FIELDS:
            assert getattr(s_ref.levels[name], field) == getattr(
                s_vec.levels[name], field
            ), (name, field)


CONFIGS = {
    "table2": TABLE2_CONFIG,
    "tiny_two_level": CacheHierarchyConfig(
        levels=(_level("l1", 1, 2, False), _level("l2", 4, 4, True))
    ),
    "single_no_write_allocate": CacheHierarchyConfig(
        levels=(_level("only", 2, 4, False),)
    ),
    "single_write_allocate": CacheHierarchyConfig(levels=(_level("only", 2, 4, True),)),
    "l2_smaller_than_l1": CacheHierarchyConfig(
        levels=(_level("l1", 8, 4, False), _level("l2", 2, 2, True))
    ),
    "no_write_allocate_l2": CacheHierarchyConfig(
        levels=(_level("l1", 1, 2, False), _level("l2", 4, 4, False))
    ),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_randomized_batches_bit_identical(name):
    rng = make_rng(hash(name) % (2**31))
    config = CONFIGS[name]
    span = 1 << 20 if config is TABLE2_CONFIG else 1 << 14
    _assert_equivalent(config, _batches(rng, 4, 500, span, 0.4))


def test_table2_large_random_stream():
    rng = make_rng(7)
    _assert_equivalent(TABLE2_CONFIG, _batches(rng, 3, 8000, 1 << 27, 0.3))


def test_table2_hot_set_contention():
    rng = make_rng(8)
    _assert_equivalent(TABLE2_CONFIG, _batches(rng, 3, 4000, 1 << 20, 0.3, hot=True))


def test_small_and_empty_batches():
    rng = make_rng(9)
    config = CONFIGS["tiny_two_level"]
    batches = _batches(rng, 6, 23, 1 << 13, 0.5)
    batches.insert(2, RefBatch.empty(99))
    _assert_equivalent(config, batches)


def test_reference_impl_alias():
    assert reference_impl is ReferenceCacheHierarchy


def test_flush_carries_owner_oids():
    """End-of-run writebacks carry the oid of the store that dirtied the
    line (regression: flush used to emit oid=-1 rows that per-object
    attribution silently dropped)."""
    h = CacheHierarchy(TABLE2_CONFIG)
    addr = np.arange(64, dtype=np.uint64) * np.uint64(64)
    batch = RefBatch(
        addr=addr,
        is_write=np.ones(64, dtype=bool),
        size=np.full(64, 8, np.uint8),
        oid=np.full(64, 17, np.int32),
        iteration=0,
    )
    h.process_batch(batch)
    flushed = h.flush()
    writebacks = flushed.oid[flushed.is_write]
    assert len(writebacks) > 0
    assert (writebacks == 17).all()
