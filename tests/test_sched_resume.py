"""repro.sched journal + resume: crash-consistent suite recovery.

The contract under test:

* every journal line is independently verifiable (CRC32 over the
  record's canonical JSON); a torn or bit-flipped line truncates the
  journal at that point — it is never fatal, and nothing before it is
  lost;
* ``run_suite_parallel(resume=run_id)`` re-executes **zero** tasks that
  the journal records as finished, and the resumed results are
  bit-identical to an uninterrupted run — verified end-to-end with a
  real SIGTERM delivered to a ``jobs=2`` subprocess mid-suite;
* a resume against a *changed* suite (different graph fingerprint) is
  refused with :class:`JournalError` instead of silently mixing runs;
* a task that exhausts its retries dooms its transitive dependents:
  they are journaled/reported as ``task_skipped`` with the root-cause
  task id and never launched;
* ``KeyboardInterrupt`` aborts the sequential suite cleanly
  (:class:`SuiteInterrupted`, exit code 130) instead of being retried
  or swallowed into a failure row, and the CLI maps interruption and
  journal/usage errors to the documented exit codes.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro
from repro.errors import JournalError, SchedulerError, SuiteInterrupted
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.experiments.__main__ import main as experiments_main
from repro.resilience.harness import ExperimentFailure
from repro.sched import (
    ExperimentTask,
    RecordTask,
    Scheduler,
    TaskGraph,
    WorkerConfig,
    build_suite_graph,
    journal_path,
    read_journal,
    replay_state,
    run_suite_parallel,
)
from repro.sched import journal as jn
from repro.sched.journal import RunJournal, decode_payload, encode_payload

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="scheduler tests exercise the fork start method",
)

FAST = dict(refs_per_iteration=3_000, scale=1.0 / 256.0, n_iterations=3)


def make_ctx(tmp_path, **kw):
    merged = {**FAST, **kw}
    return ExperimentContext(cache_dir=str(tmp_path / "cache"), **merged)


# ----------------------------------------------------------------------
class TestJournalFormat:
    def test_payload_json_roundtrip(self):
        payload = {"stats": {"app_runs": 2}, "wall_s": 0.5, "error": ""}
        enc = encode_payload(payload)
        assert "json" in enc  # plain dicts take the JSON path
        assert decode_payload(enc) == payload

    def test_payload_pickle_roundtrip(self):
        res = ExperimentResult(exp_id="x", title="t", text="body",
                               rows=[{"k": (1, 2)}], notes=["n"])
        enc = encode_payload({"result": res})
        assert "pickle" in enc  # tuples don't JSON-roundtrip
        back = decode_payload(enc)["result"]
        assert back == res
        assert back.rows[0]["k"] == (1, 2)  # type preserved, not a list

    def test_missing_journal_reads_empty(self, tmp_path):
        state = read_journal(str(tmp_path / "nope.jsonl"))
        assert state.records == [] and not state.torn

    def test_append_read_roundtrip(self, tmp_path):
        with RunJournal.open(str(tmp_path), "r1") as jnl:
            jnl.append(jn.RUN_STARTED, run_id="r1", fingerprint="f")
            jnl.task_started("record:x", 0)
            jnl.task_finished("record:x", 0, {"wall_s": 1.0})
        state = read_journal(journal_path(str(tmp_path), "r1"))
        assert not state.torn
        assert state.kinds() == [
            jn.RUN_STARTED, jn.TASK_STARTED, jn.TASK_FINISHED]

    def test_torn_final_line_is_truncated_not_fatal(self, tmp_path):
        path = journal_path(str(tmp_path), "r1")
        with RunJournal.open(str(tmp_path), "r1") as jnl:
            jnl.append(jn.RUN_STARTED, run_id="r1", fingerprint="f")
            jnl.task_finished("record:x", 0, {"wall_s": 1.0})
        good = os.path.getsize(path)
        with open(path, "ab") as fh:  # a torn append: no trailing newline
            fh.write(b'{"crc32": 1, "rec": {"kind": "task_fin')
        state = read_journal(path)
        assert state.torn and "torn final line" in state.torn_detail
        assert state.good_bytes == good
        assert state.kinds() == [jn.RUN_STARTED, jn.TASK_FINISHED]
        # reopening for append physically removes the garbage...
        with RunJournal.open(str(tmp_path), "r1") as jnl:
            assert os.path.getsize(path) == good
            jnl.task_started("exp:a", 0)
        # ...so later appends parse cleanly
        state = read_journal(path)
        assert not state.torn
        assert state.kinds()[-1] == jn.TASK_STARTED

    def test_bitflipped_line_truncates_rest(self, tmp_path):
        path = journal_path(str(tmp_path), "r1")
        with RunJournal.open(str(tmp_path), "r1") as jnl:
            jnl.append(jn.RUN_STARTED, run_id="r1", fingerprint="f")
            jnl.task_finished("record:x", 0, {"wall_s": 1.0})
            jnl.task_finished("exp:a", 0, {"wall_s": 2.0})
        lines = open(path, "rb").read().splitlines(keepends=True)
        corrupt = lines[1].replace(b"record:x", b"recorc:x")
        with open(path, "wb") as fh:
            fh.writelines([lines[0], corrupt, lines[2]])
        state = read_journal(path)
        assert state.torn and "CRC mismatch" in state.torn_detail
        # everything before the flipped line is trusted, nothing after
        assert state.kinds() == [jn.RUN_STARTED]

    def test_replay_seeds_only_finished_tasks(self, tmp_path):
        with RunJournal.open(str(tmp_path), "r1") as jnl:
            jnl.append(jn.RUN_STARTED, run_id="r1", fingerprint="fp")
            jnl.task_finished("record:x", 0, {"wall_s": 1.0})
            jnl.task_failed("record:y", 2, "worker died")
            jnl.task_skipped("exp:b", "record:y", "worker died")
            jnl.task_started("exp:a", 0)  # started but never finished
        rs = replay_state(read_journal(journal_path(str(tmp_path), "r1")), "r1")
        assert rs.fingerprint == "fp"
        assert rs.done == {"record:x"}
        assert rs.payloads["record:x"] == {"wall_s": 1.0}
        # failed and skipped tasks get a fresh chance on resume
        assert rs.failed == {"record:y"} and rs.skipped == {"exp:b"}
        assert not rs.finished and not rs.interrupted

    def test_replay_late_finish_clears_earlier_failure(self, tmp_path):
        with RunJournal.open(str(tmp_path), "r1") as jnl:
            jnl.append(jn.RUN_STARTED, run_id="r1", fingerprint="fp")
            jnl.task_failed("record:x", 2, "flaky")
            jnl.task_finished("record:x", 0, {"wall_s": 1.0})
        rs = replay_state(read_journal(journal_path(str(tmp_path), "r1")), "r1")
        assert rs.done == {"record:x"} and rs.failed == set()

    def test_replay_refuses_missing_or_headless_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no resumable journal"):
            replay_state(read_journal(str(tmp_path / "missing.jsonl")), "r1")
        with RunJournal.open(str(tmp_path), "r2") as jnl:
            jnl.task_started("record:x", 0)  # no run_started header
        with pytest.raises(JournalError, match="does not begin"):
            replay_state(
                read_journal(journal_path(str(tmp_path), "r2")), "r2")


# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_across_rebuilds_sensitive_to_suite(self, tmp_path):
        ctx = make_ctx(tmp_path)
        exps = {k: EXPERIMENTS[k] for k in ("table1", "fig2")}
        fp = build_suite_graph(ctx, exps).fingerprint()
        assert fp == build_suite_graph(ctx, exps).fingerprint()
        smaller = {"table1": EXPERIMENTS["table1"]}
        assert build_suite_graph(ctx, smaller).fingerprint() != fp
        # fidelity knobs change the run specs, hence the fingerprint
        coarse = make_ctx(tmp_path, refs_per_iteration=4_000)
        assert build_suite_graph(coarse, exps).fingerprint() != fp


class TestStallDiagnostics:
    def test_stall_error_names_unmet_dependencies(self, tmp_path, monkeypatch):
        graph = TaskGraph([
            RecordTask(task_id="record:x", name="x", spec=None),
            ExperimentTask(task_id="exp:a", exp_id="a", deps=("record:x",)),
        ])
        monkeypatch.setattr(TaskGraph, "ready",
                            lambda self, done, running: [])
        cfg = WorkerConfig(cache_root=str(tmp_path), seed=0, apps=("gtc",),
                           **FAST)
        with pytest.raises(SchedulerError) as ei:
            Scheduler(graph, cfg, jobs=1).run()
        msg = str(ei.value)
        assert "2 pending task(s)" in msg
        assert "exp:a waits on [record:x]" in msg
        assert "record:x waits on []" in msg


# ----------------------------------------------------------------------
@needs_fork
class TestResume:
    def test_resume_reexecutes_nothing_and_matches(self, tmp_path):
        exps = {"table1": EXPERIMENTS["table1"]}
        ctx = make_ctx(tmp_path, apps=("gtc",))
        first, rep1 = run_suite_parallel(
            ctx, exps, jobs=2, run_id="t1", handle_signals=False)
        cache_root = ctx.engine.cache.root
        state = read_journal(journal_path(cache_root, "t1"))
        assert state.kinds()[0] == jn.RUN_STARTED
        assert state.kinds()[-1] == jn.RUN_FINISHED
        assert not state.torn

        ctx2 = make_ctx(tmp_path, apps=("gtc",))  # same cache root
        second, rep2 = run_suite_parallel(
            ctx2, exps, jobs=2, resume="t1", handle_signals=False)
        assert rep2.n_resumed == rep2.n_tasks  # everything seeded
        (a,), (b,) = first, second
        assert isinstance(b, ExperimentResult)
        assert (a.text, a.rows, a.notes) == (b.text, b.rows, b.notes)
        # the resumed run launched zero tasks: no task_started after
        # the run_resumed marker
        kinds = read_journal(journal_path(cache_root, "t1")).kinds()
        tail = kinds[kinds.index(jn.RUN_RESUMED):]
        assert jn.TASK_STARTED not in tail
        assert tail[-1] == jn.RUN_FINISHED

    def test_changed_suite_refuses_to_resume(self, tmp_path):
        ctx = make_ctx(tmp_path, apps=("gtc",))
        run_suite_parallel(ctx, {"table1": EXPERIMENTS["table1"]},
                           jobs=1, run_id="t1", handle_signals=False)
        ctx2 = make_ctx(tmp_path, apps=("gtc",))
        with pytest.raises(JournalError, match="refusing to resume"):
            run_suite_parallel(ctx2, {"fig2": EXPERIMENTS["fig2"]},
                               jobs=1, resume="t1", handle_signals=False)


# ----------------------------------------------------------------------
def _die_recording(spec, cfg):
    os._exit(11)


@needs_fork
class TestSkipPropagation:
    def test_failed_record_skips_dependents(self, tmp_path, monkeypatch):
        # fork workers inherit the patched module, so every record
        # attempt dies like a segfault and exhausts its retries
        monkeypatch.setattr("repro.sched.workers.run_record_task",
                            _die_recording)

        def anonymous(ctx):  # undeclared: depends on every base record
            return ExperimentResult(exp_id="anon", title="a", text="never")

        ctx = make_ctx(tmp_path, apps=("gtc",))
        results, report = run_suite_parallel(
            ctx, {"anon": anonymous}, jobs=1, run_id="t1",
            handle_signals=False)
        (res,) = results
        assert isinstance(res, ExperimentFailure)
        assert res.error_type == "DependencySkipped"
        assert res.attempts == 0  # never launched
        assert "record:gtc" in res.message
        assert report.n_failed == 1 and report.n_skipped == 1
        # the journal shows the failure and the skip, and the doomed
        # experiment never started
        state = read_journal(journal_path(ctx.engine.cache.root, "t1"))
        started = [r["task_id"] for r in state.records
                   if r["kind"] == jn.TASK_STARTED]
        assert "exp:anon" not in started
        skips = [r for r in state.records if r["kind"] == jn.TASK_SKIPPED]
        assert [s["task_id"] for s in skips] == ["exp:anon"]
        assert skips[0]["root_cause"] == "record:gtc"


# ----------------------------------------------------------------------
class TestKeyboardInterrupt:
    def test_sequential_ctrl_c_aborts_suite(self, tmp_path):
        calls = []

        def first(ctx):
            calls.append("first")
            return ExperimentResult(exp_id="first", title="f", text="ok")

        def boom(ctx):
            calls.append("boom")
            raise KeyboardInterrupt

        def never(ctx):
            calls.append("never")

        ctx = make_ctx(tmp_path, apps=("gtc",))
        with pytest.raises(SuiteInterrupted) as ei:
            run_all(ctx, experiments={
                "first": first, "boom": boom, "never": never})
        exc = ei.value
        assert exc.exit_code == 130 and exc.signum == int(signal.SIGINT)
        assert exc.completed == 1
        # aborted on the spot: no harness retry, no later experiments
        assert calls == ["first", "boom"]

    def test_cli_maps_interruption_to_exit_code(self, monkeypatch, capsys):
        def interrupted(*args, **kwargs):
            raise SuiteInterrupted("killed mid-suite",
                                   signum=int(signal.SIGTERM))

        monkeypatch.setattr("repro.experiments.__main__.run_all",
                            interrupted)
        assert experiments_main(["all"]) == 143
        assert "killed mid-suite" in capsys.readouterr().err

    def test_cli_usage_and_journal_exit_codes(self, tmp_path, monkeypatch,
                                              capsys):
        monkeypatch.delenv("NVSCAVENGER_CACHE", raising=False)
        # --resume and --run-id are mutually exclusive
        assert experiments_main(["all", "--resume", "a",
                                 "--run-id", "b"]) == 2
        # --resume without a persistent cache cannot find a journal
        assert experiments_main(["all", "--resume", "a"]) == 2
        # a negative grace period is a usage error
        assert experiments_main(["all", "--grace", "-1"]) == 2
        # resuming a run that never started is a JournalError, exit 2
        assert experiments_main(
            ["all", "--resume", "ghost",
             "--cache-dir", str(tmp_path / "cache")]) == 2
        err = capsys.readouterr().err
        assert "no resumable journal" in err


# ----------------------------------------------------------------------
_SUITE_SCRIPT = textwrap.dedent("""\
    import os, pickle, sys, time

    from repro.errors import SuiteInterrupted
    from repro.experiments.common import ExperimentContext, ExperimentResult
    from repro.experiments.runner import run_all

    mode, cache, out = sys.argv[1], sys.argv[2], sys.argv[3]

    def quick_a(ctx):
        return ExperimentResult(exp_id="quick_a", title="a",
                                text=f"a@{ctx.seed}",
                                rows=[{"seed": ctx.seed}], notes=["na"])

    def quick_b(ctx):
        return ExperimentResult(exp_id="quick_b", title="b",
                                text=f"b@{ctx.seed}",
                                rows=[{"seed": ctx.seed}], notes=["nb"])

    def gated(ctx):
        if os.environ.get("RESUME_TEST_BLOCK") == "1":
            with open(os.path.join(cache, "gated-started"), "w"):
                pass
            time.sleep(300)  # parked until the parent SIGTERMs us
        return ExperimentResult(exp_id="gated", title="g",
                                text=f"g@{ctx.seed}")

    EXPS = {"quick_a": quick_a, "quick_b": quick_b, "gated": gated}
    ctx = ExperimentContext(refs_per_iteration=3_000, scale=1.0 / 256.0,
                            n_iterations=3, seed=0, apps=("gtc",),
                            cache_dir=cache)
    kwargs = {}
    if mode == "run":
        kwargs = dict(jobs=2, run_id="r1", drain_grace_s=1.0)
    elif mode == "resume":
        kwargs = dict(jobs=2, resume="r1", drain_grace_s=1.0)
    try:
        results = run_all(ctx, experiments=EXPS, **kwargs)
    except SuiteInterrupted as exc:
        sys.exit(exc.exit_code)
    with open(out, "wb") as fh:
        pickle.dump([(r.exp_id, r.text, r.rows, r.notes)
                     for r in results], fh)
    sys.exit(0)
""")


@needs_fork
class TestRealSignalRecovery:
    """SIGTERM a jobs=2 suite mid-run, resume it, compare to jobs=1."""

    def _run(self, script, mode, cache, out, block=False, wait_s=120.0):
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("RESUME_TEST_BLOCK", None)
        if block:
            env["RESUME_TEST_BLOCK"] = "1"
        return subprocess.Popen(
            [sys.executable, script, mode, cache, out], env=env), wait_s

    def test_sigterm_resume_bit_identical(self, tmp_path):
        script = str(tmp_path / "suite.py")
        with open(script, "w") as fh:
            fh.write(_SUITE_SCRIPT)
        cache = str(tmp_path / "cache")
        os.makedirs(cache, exist_ok=True)
        out = str(tmp_path / "resumed.pkl")

        # phase 1: start jobs=2, wait for the long task to be in
        # flight (everything quick has been journaled by then or will
        # finish inside the drain grace), then SIGTERM the suite
        proc, wait_s = self._run(script, "run", cache, out, block=True)
        sentinel = os.path.join(cache, "gated-started")
        deadline = time.monotonic() + 90.0
        while not os.path.exists(sentinel):
            assert proc.poll() is None, "suite died before the gated task"
            assert time.monotonic() < deadline, "gated task never launched"
            time.sleep(0.1)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=wait_s) == 143  # 128 + SIGTERM

        # the interrupted journal is well-formed and records the signal
        jpath = journal_path(cache, "r1")
        state = read_journal(jpath)
        assert not state.torn
        kinds = state.kinds()
        assert kinds[0] == jn.RUN_STARTED
        assert jn.RUN_INTERRUPTED in kinds
        assert jn.RUN_FINISHED not in kinds
        finished = [r["task_id"] for r in state.records
                    if r["kind"] == jn.TASK_FINISHED]
        assert finished, "drain journaled no completed task"
        assert "exp:gated" not in finished
        n_lines = len(state.records)

        # a torn tail (the crash the fsync'd append protocol tolerates)
        # must not block the resume
        with open(jpath, "ab") as fh:
            fh.write(b'{"crc32": 99, "rec": {"kind": "task_')

        # phase 2: resume — only unfinished tasks may launch
        proc, wait_s = self._run(script, "resume", cache, out)
        assert proc.wait(timeout=wait_s) == 0
        state = read_journal(jpath)
        assert not state.torn  # reopen truncated the garbage
        kinds = state.kinds()
        resumed_at = kinds.index(jn.RUN_RESUMED)
        assert resumed_at >= n_lines - 1  # prior records kept verbatim
        restarted = [r["task_id"] for r in state.records[resumed_at:]
                     if r["kind"] == jn.TASK_STARTED]
        assert not set(restarted) & set(finished), (
            f"resume re-executed already-journaled tasks: "
            f"{sorted(set(restarted) & set(finished))}")
        assert kinds[-1] == jn.RUN_FINISHED

        # phase 3: an uninterrupted sequential run in a fresh cache
        # must be bit-identical to interrupted-then-resumed jobs=2
        seq_out = str(tmp_path / "seq.pkl")
        proc, wait_s = self._run(
            script, "seq", str(tmp_path / "cache-seq"), seq_out)
        assert proc.wait(timeout=wait_s) == 0
        with open(out, "rb") as fh:
            resumed = pickle.load(fh)
        with open(seq_out, "rb") as fh:
            sequential = pickle.load(fh)
        assert resumed == sequential
