"""NVScavenger facade: end-to-end analysis with ground truth, plus reports."""

import pytest

from repro.scavenger import NVScavenger
from repro.scavenger.report import (
    classification_table,
    format_table,
    objects_csv,
    objects_table,
)
from repro.workloads.generator import ObjectSpec, SyntheticWorkload, WorkloadSpec


def make_workload():
    return SyntheticWorkload(
        WorkloadSpec(
            objects=(
                ObjectSpec("ro_table", "global", 1000, reads_per_iter=500,
                           writes_per_iter=0),
                ObjectSpec("state", "global", 2000, reads_per_iter=300,
                           writes_per_iter=100),
                ObjectSpec("scratch", "heap", 500, reads_per_iter=50,
                           writes_per_iter=150),
                ObjectSpec("locals", "stack", 100, reads_per_iter=400,
                           writes_per_iter=100),
                ObjectSpec("rare", "global", 800, reads_per_iter=40,
                           writes_per_iter=0, active_iterations=(3,)),
            ),
            n_iterations=5,
        )
    )


@pytest.fixture(scope="module")
def result():
    return NVScavenger().analyze(make_workload(), n_main_iterations=5)


def test_totals(result):
    # per-iteration: 500+300+100+50+150+400+100 = 1600 (+40 in iteration 3)
    assert result.total_refs == 1600 * 5 + 40
    assert result.total_reads + result.total_writes == result.total_refs


def test_object_ground_truth(result):
    ro = result.metrics_by_name("ro_table")
    assert ro.reads == 2500 and ro.writes == 0
    assert ro.read_only
    state = result.metrics_by_name("state")
    assert state.rw_ratio == pytest.approx(3.0)
    rare = result.metrics_by_name("rare")
    assert rare.iterations_touched == 1
    assert rare.reads == 40


def test_stack_summary(result):
    assert result.stack_summary.rw_ratio() == pytest.approx(4.0)
    assert result.stack_summary.reference_percentage == pytest.approx(
        2500 / (1600 * 5 + 40), rel=1e-3
    )


def test_frame_stats(result):
    frames = {f.routine: f for f in result.frame_stats}
    assert "synthetic_kernel" in frames
    assert frames["synthetic_kernel"].reads == 2000
    assert frames["synthetic_kernel"].writes == 500


def test_classification_present_for_all_objects(result):
    assert len(result.classified) == len(result.object_metrics)
    placements = {c.metrics.name: c.placement.value for c in result.classified}
    assert placements["ro_table"] == "nvram"
    # heap objects are named by their allocation callsite
    assert placements["heap:synthetic:scratch"] == "dram"


def test_usage_and_variance(result):
    assert result.usage.total_bytes > 0
    # 'rare' only in iteration 3: sparse mass exists
    assert result.usage.iteration_counts.tolist()[0] in (1, 5) or True
    assert result.variance.n_objects >= 3


def test_rw_ratio_property(result):
    assert result.rw_ratio > 1.0


def test_metrics_by_name_missing(result):
    with pytest.raises(KeyError):
        result.metrics_by_name("nope")


class TestReports:
    def test_format_table_alignment(self):
        txt = format_table(["a", "bb"], [(1, 2.5), ("xx", float("inf"))])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "inf" in lines[3]

    def test_objects_table(self, result):
        txt = objects_table(result.object_metrics)
        assert "ro_table" in txt
        assert "inf" in txt  # the read-only object

    def test_objects_table_limit(self, result):
        txt = objects_table(result.object_metrics, limit=2)
        assert len(txt.splitlines()) == 4

    def test_classification_table(self, result):
        txt = classification_table(result.classified)
        assert "nvram" in txt

    def test_objects_csv(self, result):
        csv_text = objects_csv(result.object_metrics)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("oid,")
        assert len(lines) == len(result.object_metrics) + 1
