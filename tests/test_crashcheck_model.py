"""The crash-consistency model itself: recorder, durability coverage,
enumeration, materialization — and the end-to-end property that the
checker *flags* a protocol missing its fsyncs.

The model is only trustworthy if it is adversarial enough to catch the
classic tmp+rename-without-fsync bug and conservative enough not to
flag the correct sequence; both directions are pinned here.
"""

import json
import os

import pytest

from repro.crashcheck import (
    BLOCK,
    MarkLog,
    ProtocolSpec,
    RecordingFS,
    Schedule,
    annotate,
    enumerate_schedules,
    materialize,
    run_checker,
    snapshot_tree,
)
from repro.crashcheck.model import NEVER
from repro.errors import CrashConsistencyError


def record(tmp_path, body):
    """Run *body(root, fs)* against a RecordingFS; returns the log."""
    root = tmp_path / "root"
    root.mkdir(parents=True)
    snapshot = snapshot_tree(str(root))
    fs = RecordingFS(str(root))
    body(str(root), fs)
    return annotate(snapshot, fs.ops)


# ----------------------------------------------------------------------
class TestRecorder:
    def test_write_coalescing(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "f"), "w") as fh:
                for piece in ("ab", "cd", "ef"):
                    fh.write(piece)

        log = record(tmp_path, body)
        writes = [o for o in log.ops if o.kind == "write"]
        assert len(writes) == 1
        assert writes[0].data == b"abcdef"

    def test_fsync_breaks_coalescing(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "f"), "wb") as fh:
                fh.write(b"one")
                fs.fsync(fh)
                fh.write(b"two")

        log = record(tmp_path, body)
        assert [o.kind for o in log.ops] == ["creat", "write", "fsync",
                                             "write"]

    def test_makedirs_logs_each_missing_level(self, tmp_path):
        def body(root, fs):
            fs.makedirs(os.path.join(root, "a", "b", "c"))

        log = record(tmp_path, body)
        assert [o.label for o in log.ops] == ["mkdir:a", "mkdir:b",
                                              "mkdir:c"]

    def test_escape_raises(self, tmp_path):
        (tmp_path / "root").mkdir()
        fs = RecordingFS(str(tmp_path / "root"))
        with pytest.raises(ValueError):
            fs.open(str(tmp_path / "outside.txt"), "w")

    def test_rename_label_names_destination(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "f.tmp"), "wb") as fh:
                fh.write(b"x")
            fs.replace(os.path.join(root, "f.tmp"),
                       os.path.join(root, "f"))

        log = record(tmp_path, body)
        assert log.ops[-1].label == "rename:f"


# ----------------------------------------------------------------------
class TestDurability:
    def test_fsync_covers_earlier_same_file_writes_only(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "a"), "wb") as fa, \
                    fs.open(os.path.join(root, "b"), "wb") as fb:
                fa.write(b"aaa")
                fb.write(b"bbb")
                fs.fsync(fa)
                fa.write(b"after")

        log = record(tmp_path, body)
        write_a = log.find_op("write", "a")
        write_b = log.find_op("write", "b")
        fsync_i = next(o.index for o in log.ops if o.kind == "fsync")
        assert log.covered_at[write_a.index] == fsync_i + 1
        assert log.covered_at[write_b.index] == NEVER
        # the write after the fsync is not covered by it
        late = log.find_op("write", "a", nth=1)
        assert log.covered_at[late.index] == NEVER

    def test_file_creation_needs_parent_fsync_dir(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "f"), "wb") as fh:
                fh.write(b"payload")
                fs.fsync(fh)  # data durable, the *name* is not

        log = record(tmp_path, body)
        creat = log.find_op("creat", "f")
        assert log.covered_at[creat.index] == NEVER

        def body2(root, fs):
            body(root, fs)
            fs.fsync_dir(root)

        log2 = record(tmp_path / "2", body2)
        creat2 = log2.find_op("creat", "f")
        assert log2.is_durable(creat2.index)

    def test_rename_across_dirs_needs_both_parents(self, tmp_path):
        def body(root, fs):
            fs.makedirs(os.path.join(root, "src"))
            fs.makedirs(os.path.join(root, "dst"))
            with fs.open(os.path.join(root, "src", "f"), "wb") as fh:
                fh.write(b"x")
            fs.rename(os.path.join(root, "src", "f"),
                      os.path.join(root, "dst", "f"))
            fs.fsync_dir(os.path.join(root, "dst"))

        log = record(tmp_path, body)
        rename = log.find_op("rename", "f")
        # only the destination parent was fsync'd: the unlink half of
        # the rename (in src/) can still be lost
        assert log.covered_at[rename.index] == NEVER

    def test_same_dir_metadata_is_prefix_ordered(self, tmp_path):
        def body(root, fs):
            for name in ("one", "two", "three"):
                with fs.open(os.path.join(root, name), "wb") as fh:
                    fh.write(b"x")

        log = record(tmp_path, body)
        k = log.n_ops
        for sched in enumerate_schedules(log, k, per_point=64):
            tree = materialize(log, sched)
            names = set(tree.children[0])
            # "two" without "one" (or "three" without "two") is not a
            # reachable state: entry ops in one dir persist in order
            assert not ("two" in names and "one" not in names)
            assert not ("three" in names and "two" not in names)

    def test_all_dropped_state_is_enumerated(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "f"), "wb") as fh:
                fh.write(b"x")

        log = record(tmp_path, body)
        trees = [materialize(log, s).children[0]
                 for s in enumerate_schedules(log, log.n_ops,
                                              per_point=16)]
        assert {} in trees  # the crash lost everything


# ----------------------------------------------------------------------
class TestMaterialization:
    def test_data_follows_inode_through_rename(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "f.tmp"), "wb") as fh:
                fh.write(b"payload")
                fs.fsync(fh)
            fs.replace(os.path.join(root, "f.tmp"), os.path.join(root, "f"))
            fs.fsync_dir(root)

        log = record(tmp_path, body)
        tree = materialize(log, Schedule(crash_index=log.n_ops))
        node = tree.children[0]["f"]
        assert bytes(tree.content[node]) == b"payload"

    def test_torn_write_keeps_block_prefix(self, tmp_path):
        payload = bytes(range(256)) * 8  # 2 KiB: 4 blocks

        def body(root, fs):
            with fs.open(os.path.join(root, "f"), "wb") as fh:
                fh.write(payload)

        log = record(tmp_path, body)
        write = log.find_op("write", "f")
        tree = materialize(log, Schedule(
            crash_index=log.n_ops, tears=((write.index, BLOCK),)))
        node = tree.children[0]["f"]
        assert bytes(tree.content[node]) == payload[:BLOCK]

    def test_drop_of_a_durable_op_is_ignored(self, tmp_path):
        def body(root, fs):
            with fs.open(os.path.join(root, "f"), "wb") as fh:
                fh.write(b"x")
            fs.fsync_dir(root)

        log = record(tmp_path, body)
        creat = log.find_op("creat", "f")
        tree = materialize(log, Schedule(crash_index=log.n_ops,
                                         drops=(creat.index,)))
        assert "f" in tree.children[0]

    def test_emit_writes_the_tree(self, tmp_path):
        def body(root, fs):
            fs.makedirs(os.path.join(root, "d"))
            with fs.open(os.path.join(root, "d", "f"), "wb") as fh:
                fh.write(b"hello")

        log = record(tmp_path, body)
        dest = tmp_path / "emitted"
        dest.mkdir()
        materialize(log, Schedule(crash_index=log.n_ops)).emit(str(dest))
        assert (dest / "d" / "f").read_bytes() == b"hello"


# ----------------------------------------------------------------------
# the end-to-end property: a missing fsync is *found*
# ----------------------------------------------------------------------
PAYLOAD = {"value": list(range(400))}  # > one block once serialized


def _broken_workload(root, fs, mark):
    # the classic bug: tmp + atomic rename, but neither the file data
    # nor the directory entry is ever fsync'd before acking
    tmp = os.path.join(root, "data.json.tmp")
    with fs.open(tmp, "w") as fh:
        json.dump(PAYLOAD, fh)
    fs.replace(tmp, os.path.join(root, "data.json"))
    mark("saved")


def _fixed_workload(root, fs, mark):
    tmp = os.path.join(root, "data.json.tmp")
    with fs.open(tmp, "w") as fh:
        json.dump(PAYLOAD, fh)
        fs.fsync(fh)
    fs.replace(tmp, os.path.join(root, "data.json"))
    fs.fsync_dir(root)
    mark("saved")


def _json_recover(root, acked):
    if not any(m.label == "saved" for m in acked):
        return
    try:
        with open(os.path.join(root, "data.json")) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise CrashConsistencyError(
            f"acked save unreadable: {type(exc).__name__}: {exc}",
            protocol="json")
    if data != PAYLOAD:
        raise CrashConsistencyError("acked save replays wrong payload",
                                    protocol="json")


class TestCheckerFindsMissingFsync:
    def test_broken_protocol_is_flagged(self, tmp_path):
        spec = ProtocolSpec(name="json", description="broken tmp+rename",
                            setup=lambda root: None,
                            workload=_broken_workload,
                            recover=_json_recover)
        report = run_checker(spec, str(tmp_path / "w"))
        assert not report.clean
        v = report.violations[0]
        # the minimized schedule names the un-fsync'd op(s) it dropped
        assert v.schedule["drops"] or v.schedule["tears"]
        labels = set(v.schedule["labels"].values())
        assert labels & {"rename:data.json", "write:data.json.tmp",
                         "creat:data.json.tmp"}

    def test_fixed_protocol_is_clean(self, tmp_path):
        spec = ProtocolSpec(name="json", description="fixed tmp+rename",
                            setup=lambda root: None,
                            workload=_fixed_workload,
                            recover=_json_recover)
        report = run_checker(spec, str(tmp_path / "w"))
        assert report.clean
        assert report.n_unique_states >= 4
