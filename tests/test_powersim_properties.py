"""Property tests over the power simulator: conservation and mapping laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvram.technology import DRAM_DDR3, PCRAM
from repro.powersim.addressing import AddressMapping
from repro.powersim.config import DeviceConfig, TABLE3_DEVICE
from repro.powersim.controller import MemoryController
from repro.trace.record import RefBatch


@given(st.lists(st.integers(0, (1 << 31) - 1), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_address_mapping_is_injective_on_lines(raw_addrs):
    """Distinct line addresses within capacity decode to distinct
    (rank, bank, row, col) tuples — no two lines collide."""
    m = AddressMapping(TABLE3_DEVICE)
    lines = np.unique(np.asarray(raw_addrs, dtype=np.uint64) // 64 * 64)
    # stay within the device capacity so the row field does not wrap
    lines = lines[lines < TABLE3_DEVICE.capacity_bytes]
    if lines.size == 0:
        return
    rank, bank, row, col = m.decode_batch(lines)
    tuples = set(zip(rank.tolist(), bank.tolist(), row.tolist(), col.tolist()))
    assert len(tuples) == lines.size


@given(
    st.lists(
        st.tuples(st.integers(0, 1 << 24), st.booleans()), min_size=1, max_size=300
    )
)
@settings(max_examples=40, deadline=None)
def test_controller_conserves_accesses(ops):
    """reads + writes == accesses; hits + misses == accesses; elapsed time
    is positive and non-decreasing in traffic."""
    ctl = MemoryController(TABLE3_DEVICE, DRAM_DDR3)
    addrs = np.array([a // 64 * 64 for a, _ in ops], dtype=np.uint64)
    is_w = np.array([w for _, w in ops], dtype=bool)
    batch = RefBatch(
        addr=addrs, is_write=is_w,
        size=np.full(len(ops), 64, np.uint8),
        oid=np.full(len(ops), -1, np.int32),
    )
    ctl.process_batch(batch)
    st_ = ctl.stats
    assert st_.reads + st_.writes == len(ops)
    assert st_.row_hits + st_.row_misses == len(ops)
    assert st_.precharges <= st_.row_misses
    assert st_.elapsed_ns > 0
    assert ctl.activation_count() == st_.row_misses


@given(st.integers(1, 400))
@settings(max_examples=30, deadline=None)
def test_elapsed_monotone_in_traffic(n):
    ctl = MemoryController(TABLE3_DEVICE, PCRAM)
    rng = np.random.default_rng(0)
    addrs = (rng.integers(0, 1 << 22, n, dtype=np.uint64) // 64) * 64
    half = n // 2
    b1 = RefBatch.from_access(addrs[:half] if half else addrs[:1], 0)
    b2 = RefBatch.from_access(addrs, 0)
    ctl.process_batch(b1)
    t1 = ctl.elapsed_ns
    ctl.process_batch(b2)
    assert ctl.elapsed_ns >= t1


@given(
    st.integers(1, 6).map(lambda k: 2 ** k),  # ranks
    st.integers(1, 6).map(lambda k: 2 ** k),  # banks
)
@settings(max_examples=20, deadline=None)
def test_device_geometry_consistency(n_ranks, n_banks):
    dev = DeviceConfig(n_ranks=n_ranks, n_banks=n_banks)
    assert dev.total_banks == n_ranks * n_banks
    m = AddressMapping(dev)
    addrs = np.arange(0, 1 << 20, 4096, dtype=np.uint64)
    rank, bank, row, col = m.decode_batch(addrs)
    assert int(rank.max()) < n_ranks
    assert int(bank.max()) < n_banks
    flat, _ = m.flat_bank_batch(addrs)
    assert int(flat.max()) < dev.total_banks


def test_same_trace_same_power_deterministic():
    rng = np.random.default_rng(1)
    addrs = (rng.integers(0, 1 << 24, 2000, dtype=np.uint64) // 64) * 64
    batch = RefBatch.from_access(addrs, 0)

    def run():
        from repro.powersim.system import MemorySystem

        sys = MemorySystem(PCRAM)
        sys.process_batch(batch)
        return sys.report().average_power_mw

    assert run() == pytest.approx(run())
