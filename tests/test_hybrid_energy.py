"""Hand-computed scenarios for :mod:`repro.hybrid.energy`.

Every expectation here is derived on paper from the published device
constants (PCRAM read 40 mA / write 150 mA at 1.5 V; DRAM 40 mA
symmetric), so a regression in the energy arithmetic fails with the
exact wrong number rather than a drifted ratio.

Convention: power[mW] = current[mA] * voltage[V]; one access's array
power applies over one channel burst (default 10 ns);
mW * ns = pJ, / 1e3 = nJ.
"""

from __future__ import annotations

import pytest

from repro.errors import PlacementError
from repro.hybrid.energy import HybridEnergyModel, access_energy_nj
from repro.hybrid.placement import PlacementPlan
from repro.memory.object import ObjectKind
from repro.nvram.technology import DRAM_DDR3, PCRAM
from repro.scavenger.metrics import ObjectMetrics
from repro.util.units import GiB

import numpy as np

# the device constants the hand computations below rely on
assert PCRAM.read_power_mw == 60.0     # 40 mA * 1.5 V
assert PCRAM.write_power_mw == 225.0   # 150 mA * 1.5 V
assert DRAM_DDR3.read_power_mw == 60.0
assert DRAM_DDR3.write_power_mw == 60.0


def metrics(reads, writes, size=4096):
    return ObjectMetrics(
        oid=0, name="o0", kind=ObjectKind.GLOBAL, size=size, base=0x100000,
        reads=reads, writes=writes, reference_rate=0.0, write_share=0.0,
        reads_per_iter=np.zeros(11, np.int64),
        writes_per_iter=np.zeros(11, np.int64), iterations_touched=10)


class TestAccessEnergy:
    def test_pcram_mixed_burst(self):
        # 5 reads * 60 mW + 3 writes * 225 mW = 975 mW over a 10 ns
        # burst each = 9750 pJ = 9.75 nJ
        assert access_energy_nj(PCRAM, 5, 3) == pytest.approx(9.75)

    def test_dram_reads_only(self):
        # 10 * 60 mW * 10 ns = 6000 pJ = 6 nJ
        assert access_energy_nj(DRAM_DDR3, 10, 0) == pytest.approx(6.0)

    def test_burst_scales_linearly(self):
        assert access_energy_nj(PCRAM, 5, 3, burst_ns=20.0) == pytest.approx(19.5)

    def test_zero_accesses(self):
        assert access_energy_nj(PCRAM, 0, 0) == 0.0

    def test_invalid(self):
        with pytest.raises(PlacementError):
            access_energy_nj(PCRAM, 1, 0, burst_ns=0.0)
        with pytest.raises(PlacementError):
            access_energy_nj(PCRAM, -1, 0)
        with pytest.raises(PlacementError):
            access_energy_nj(PCRAM, 0, -1)


class TestModelUsesSameArithmetic:
    def test_nvram_resident_object_dynamic_energy(self):
        # an all-NVM plan's dynamic energy is exactly access_energy_nj of
        # the object's traffic; NVM pays no static energy at all
        m = metrics(reads=100, writes=40)
        plan = PlacementPlan(tech_name="PCRAM", nvram_oids=[0],
                             nvram_bytes=m.size)
        rep = HybridEnergyModel(PCRAM).energy([m], plan, window_ns=1e6)
        assert rep.static_nj == 0.0
        # 100*60 + 40*225 = 15000 mW-bursts -> 150000 pJ = 150 nJ
        assert rep.dynamic_nj == pytest.approx(150.0)
        assert rep.dynamic_nj == pytest.approx(
            access_energy_nj(PCRAM, m.reads, m.writes))

    def test_dram_static_energy_by_hand(self):
        # 1 GiB resident for 1e6 ns at 180 mW/GiB: 180 mW * 1e6 ns
        # = 1.8e8 pJ = 180000 nJ
        m = metrics(reads=0, writes=0, size=GiB)
        rep = HybridEnergyModel(PCRAM).all_dram_baseline([m], window_ns=1e6)
        assert rep.static_nj == pytest.approx(180_000.0)
        assert rep.dynamic_nj == 0.0
        assert rep.total_nj == pytest.approx(180_000.0)
        # average power over the window: 180000 nJ / 1e6 ns = 180 mW
        assert rep.average_power_mw == pytest.approx(180.0)

    def test_custom_burst_propagates(self):
        m = metrics(reads=10, writes=0)
        plan = PlacementPlan(tech_name="PCRAM", nvram_oids=[0],
                             nvram_bytes=m.size)
        rep = HybridEnergyModel(PCRAM, burst_ns=20.0).energy([m], plan, 1e6)
        assert rep.dynamic_nj == pytest.approx(
            access_energy_nj(PCRAM, 10, 0, burst_ns=20.0))

    def test_access_fraction_truncates_counts(self):
        # int(100 * 0.1) = 10 reads reach memory
        m = metrics(reads=100, writes=0)
        rep = HybridEnergyModel(PCRAM).all_dram_baseline(
            [m], 1e6, memory_access_fraction=0.1)
        assert rep.dynamic_nj == pytest.approx(access_energy_nj(DRAM_DDR3, 10, 0))

    def test_savings_by_hand(self):
        # hybrid 150 nJ vs baseline 200 nJ -> 25% saving
        from repro.hybrid.energy import EnergyReport

        rep = EnergyReport(static_nj=50.0, dynamic_nj=100.0, window_ns=1.0)
        baseline = EnergyReport(static_nj=100.0, dynamic_nj=100.0, window_ns=1.0)
        assert rep.savings_vs(baseline) == pytest.approx(0.25)
        assert rep.savings_vs(EnergyReport(0.0, 0.0, 1.0)) == 0.0
