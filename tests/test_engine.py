"""Trace-once / replay-many pipeline engine: caching, durability, fidelity.

The contract under test:

* each distinct :class:`~repro.engine.RunSpec` executes the application at
  most once per cache root — in-process *and* across engine instances
  sharing a persistent root;
* replaying a recorded artifact into the NV-SCAVENGER analyzers yields a
  result bit-identical to a live instrumented run;
* partially written artifacts (no ``meta.json`` commit marker) are treated
  as absent, never served;
* ``run_all`` drives the whole experiment suite off one recording pass.
"""

import numpy as np
import pytest

from repro.cachesim import MemoryTraceProbe
from repro.engine import PipelineEngine, RunSpec, VARIANT_PREFIX
from repro.errors import ConfigurationError
from repro.scavenger import NVScavenger

SPEC = dict(refs_per_iteration=2_000, scale=1.0 / 256.0, n_iterations=3, seed=11)


def make_engine(tmp_path):
    return PipelineEngine(root=tmp_path / "cache")


# ----------------------------------------------------------------------
class TestRunSpec:
    def test_key_is_stable_and_canonical(self):
        a = RunSpec(app="gtc", **SPEC)
        b = RunSpec(app="gtc", **SPEC)
        assert a.key == b.key
        assert len(a.key) == 64
        assert a.canonical()["app"] == "gtc"

    def test_key_distinguishes_every_knob(self):
        base = RunSpec(app="gtc", **SPEC)
        others = [
            RunSpec(app="s3d", **SPEC),
            RunSpec(app="gtc", **{**SPEC, "seed": 12}),
            RunSpec(app="gtc", **{**SPEC, "refs_per_iteration": 2_001}),
            RunSpec(app="gtc", **{**SPEC, "scale": 1.0 / 128.0}),
            RunSpec(app="gtc", **{**SPEC, "n_iterations": 4}),
        ]
        assert len({base.key, *(o.key for o in others)}) == 6

    def test_variant_spec_instantiates(self):
        app = RunSpec(app=f"{VARIANT_PREFIX}nek5000", **SPEC).instantiate()
        assert "nek5000" in type(app).__name__.lower() or app.info.name

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(app="notanapp", **SPEC).instantiate()
        with pytest.raises(ConfigurationError):
            RunSpec(app=f"{VARIANT_PREFIX}notanapp", **SPEC).instantiate()


# ----------------------------------------------------------------------
class TestCaching:
    def test_record_executes_once(self, tmp_path):
        eng = make_engine(tmp_path)
        spec = RunSpec(app="gtc", **SPEC)
        a1 = eng.record(spec)
        a2 = eng.record(spec)
        assert eng.stats.app_runs == 1
        assert eng.stats.cache_hits == 1
        assert a1.meta["refs"] == a2.meta["refs"] > 0

    def test_persists_across_engine_instances(self, tmp_path):
        spec = RunSpec(app="gtc", **SPEC)
        make_engine(tmp_path).record(spec)
        # a "second process": fresh engine, same root, zero executions
        eng2 = make_engine(tmp_path)
        probe = MemoryTraceProbe()
        art = eng2.replay(spec, probe)
        assert eng2.stats.app_runs == 0
        assert eng2.stats.cache_hits == 1
        assert sum(len(b) for b in probe.memory_trace) <= art.meta["refs"]

    def test_partial_artifact_is_a_miss(self, tmp_path):
        eng = make_engine(tmp_path)
        spec = RunSpec(app="gtc", **SPEC)
        art = eng.record(spec)
        # simulate a crash between trace write and commit marker
        import os

        os.unlink(art.meta_path)
        eng2 = make_engine(tmp_path)
        eng2.record(spec)
        assert eng2.stats.app_runs == 1  # re-recorded, not served corrupt

    def test_distinct_specs_recorded_separately(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.record(RunSpec(app="gtc", **SPEC))
        eng.record(RunSpec(app="gtc", **{**SPEC, "seed": 12}))
        assert eng.stats.app_runs == 2

    def test_failed_recording_leaves_no_artifact(self, tmp_path):
        eng = make_engine(tmp_path)
        spec = RunSpec(app="notanapp", **SPEC)
        with pytest.raises(ConfigurationError):
            eng.record(spec)
        assert eng.cache.get(spec) is None
        assert eng.stats.app_runs == 0


# ----------------------------------------------------------------------
class TestReplayFidelity:
    @pytest.fixture(scope="class", params=["gtc", "cam"])
    def pair(self, request, tmp_path_factory):
        """(live result, replayed result) for one app."""
        name = request.param
        spec = RunSpec(app=name, **SPEC)
        live = NVScavenger().analyze(
            spec.instantiate(), n_main_iterations=spec.n_iterations
        )
        eng = PipelineEngine(root=tmp_path_factory.mktemp("cache"))
        session = NVScavenger().replay_session()
        art = eng.replay(spec, session.probe, stack=session.stack)
        replayed = session.result(
            footprint_bytes=art.meta["footprint_bytes"],
            n_main_iterations=spec.n_iterations,
        )
        return live, replayed

    def test_totals_identical(self, pair):
        live, rep = pair
        assert (live.total_refs, live.total_reads, live.total_writes) == (
            rep.total_refs, rep.total_reads, rep.total_writes
        )
        assert live.footprint_bytes == rep.footprint_bytes

    def test_stack_summary_identical(self, pair):
        live, rep = pair
        np.testing.assert_array_equal(
            live.stack_summary.stack_reads, rep.stack_summary.stack_reads
        )
        np.testing.assert_array_equal(
            live.stack_summary.stack_writes, rep.stack_summary.stack_writes
        )
        np.testing.assert_array_equal(
            live.stack_summary.total_refs, rep.stack_summary.total_refs
        )

    def test_frame_stats_identical(self, pair):
        live, rep = pair
        assert [
            (f.routine, f.reads, f.writes, f.refs, f.max_frame_bytes)
            for f in live.frame_stats
        ] == [
            (f.routine, f.reads, f.writes, f.refs, f.max_frame_bytes)
            for f in rep.frame_stats
        ]

    def test_object_metrics_identical(self, pair):
        live, rep = pair
        key = lambda m: (m.oid, m.name, m.size, m.reads, m.writes)  # noqa: E731
        assert sorted(map(key, live.object_metrics)) == sorted(
            map(key, rep.object_metrics)
        )

    def test_classification_identical(self, pair):
        live, rep = pair
        cls = lambda r: sorted(  # noqa: E731
            (c.metrics.oid, c.nvram_class.name, c.placement.name)
            for c in r.classified
        )
        assert cls(live) == cls(rep)

    def test_hierarchy_stats_and_memory_trace_identical(self, tmp_path):
        """Live fan-out run vs replay: the cache filter sees the same
        stream and produces identical HierarchyStats and memory trace."""
        spec = RunSpec(app="gtc", **SPEC)
        live_probe = MemoryTraceProbe()
        NVScavenger(extra_probes=[live_probe]).analyze(
            spec.instantiate(), n_main_iterations=spec.n_iterations
        )
        rep_probe = MemoryTraceProbe()
        session = NVScavenger(extra_probes=[rep_probe]).replay_session()
        make_engine(tmp_path).replay(spec, session.probe, stack=session.stack)
        assert live_probe.stats() == rep_probe.stats()
        live_trace = np.concatenate([b.addr for b in live_probe.memory_trace])
        rep_trace = np.concatenate([b.addr for b in rep_probe.memory_trace])
        np.testing.assert_array_equal(live_trace, rep_trace)
        live_w = np.concatenate([b.is_write for b in live_probe.memory_trace])
        rep_w = np.concatenate([b.is_write for b in rep_probe.memory_trace])
        np.testing.assert_array_equal(live_w, rep_w)

    def test_replay_many_is_deterministic(self, tmp_path):
        spec = RunSpec(app="s3d", **SPEC)
        eng = make_engine(tmp_path)
        traces = []
        for _ in range(2):
            probe = MemoryTraceProbe()
            eng.replay(spec, probe)
            traces.append(
                np.concatenate([b.addr for b in probe.memory_trace])
                if probe.memory_trace else np.empty(0, np.uint64)
            )
        assert eng.stats.app_runs == 1
        assert eng.stats.replays == 2
        np.testing.assert_array_equal(traces[0], traces[1])


# ----------------------------------------------------------------------
class TestSuiteIntegration:
    def test_run_all_records_each_spec_once(self, tmp_path):
        from repro.experiments import table1, table5
        from repro.experiments.common import ExperimentContext
        from repro.experiments.runner import run_all

        ctx = ExperimentContext(
            refs_per_iteration=2_000,
            scale=1.0 / 256.0,
            n_iterations=3,
            seed=0,
            apps=("gtc", "s3d"),
            cache_dir=str(tmp_path / "cache"),
        )
        exps = {"table1": table1.run, "table5": table5.run}
        results = run_all(ctx, experiments=exps, retries=0)
        # two experiments over two shared apps: exactly one execution per app
        assert ctx.engine.stats.app_runs == len(ctx.apps)
        assert len(results) == 2
        # the harness attributed engine deltas to each experiment
        assert all("experiment_wall_s" in r.timings for r in results)
        # a second suite invocation replays entirely from cache
        run_all(ctx, experiments=exps, retries=0)
        assert ctx.engine.stats.app_runs == len(ctx.apps)

    def test_engine_stats_snapshot_delta(self, tmp_path):
        eng = make_engine(tmp_path)
        before = eng.stats.snapshot()
        eng.replay(RunSpec(app="gtc", **SPEC), MemoryTraceProbe())
        d = eng.stats.delta(before)
        assert d["app_runs"] == 1 and d["replays"] == 1
        assert d["record_refs"] == d["replay_refs"] > 0
        assert "replay" in eng.stats.table()


# ----------------------------------------------------------------------
class TestDecodeMemo:
    """The in-memory per-chunk decode memo behind warm replays."""

    def test_first_replay_seeds_memo_and_warm_replay_hits_it(self, tmp_path):
        spec = RunSpec(app="gtc", **SPEC)
        eng = make_engine(tmp_path)
        eng.replay(spec, MemoryTraceProbe())
        n_chunks = eng.cache.get(spec).meta["n_batches"]
        # first replay decoded every chunk once and memoized them all
        assert eng.memoized_chunks(spec.key) == list(range(n_chunks))
        assert eng.stats.chunks_decoded == n_chunks
        traces = []
        for _ in range(2):
            probe = MemoryTraceProbe()
            eng.replay(spec, probe)
            traces.append(np.concatenate([b.addr for b in probe.memory_trace]))
        np.testing.assert_array_equal(traces[0], traces[1])
        assert eng.stats.replays == 3
        # warm replays hit the memo: no further decodes
        assert eng.stats.chunks_decoded == n_chunks

    def test_memoized_batches_are_frozen(self, tmp_path):
        spec = RunSpec(app="gtc", **SPEC)
        eng = make_engine(tmp_path)
        eng.replay(spec, MemoryTraceProbe())
        chunks = eng.memoized_chunks(spec.key)
        assert chunks
        handle = eng._handles[spec.key]
        for i in chunks:
            batch = eng._chunk(handle, i)
            assert not batch.addr.flags.writeable
            with pytest.raises(ValueError):
                batch.addr[0] = 0

    def test_zero_budget_disables_memo(self, tmp_path):
        spec = RunSpec(app="gtc", **SPEC)
        eng = PipelineEngine(root=tmp_path / "cache", decode_cache_bytes=0)
        eng.replay(spec, MemoryTraceProbe())
        assert eng.memoized_chunks(spec.key) == []
        # cold path still replays correctly
        probe = MemoryTraceProbe()
        eng.replay(spec, probe)
        assert probe.memory_trace

    def test_lru_eviction_under_budget_pressure(self, tmp_path):
        a = RunSpec(app="gtc", **SPEC)
        b = RunSpec(app="s3d", **SPEC)
        eng = make_engine(tmp_path)
        eng.replay(a, MemoryTraceProbe())
        n_a = len(eng.memoized_chunks(a.key))
        size_a = sum(entry.nbytes for entry in eng._decoded.values())
        # budget fits one decoded run but not two
        eng.decode_cache_bytes = int(size_a * 1.5)
        eng.replay(b, MemoryTraceProbe())
        n_b = eng.cache.get(b).meta["n_batches"]
        # b's chunks are all resident; a was partially evicted, oldest
        # chunks first — eviction is chunk-granular now, not whole-run
        assert eng.memoized_chunks(b.key) == list(range(n_b))
        assert len(eng.memoized_chunks(a.key)) < n_a
        # evicted chunks replay fine (cold path) and re-enter the memo
        probe = MemoryTraceProbe()
        eng.replay(a, probe)
        assert probe.memory_trace
        assert eng.memoized_chunks(a.key)

    def test_quarantine_forgets_memoized_run(self, tmp_path):
        spec = RunSpec(app="gtc", **SPEC)
        eng = make_engine(tmp_path)
        eng.replay(spec, MemoryTraceProbe())
        assert eng.memoized_chunks(spec.key)
        eng.cache.quarantine(spec.key, reason="test")
        eng._forget(spec.key)
        assert eng.memoized_chunks(spec.key) == []
        assert spec.key not in eng._handles
