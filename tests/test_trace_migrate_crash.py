"""Crash-point sweep over ``nvscavenger trace migrate``.

Kill the migration at every single filesystem operation: the
destination must be either completely absent or a fully valid,
checksum-verified v3 container — never a half-published directory —
and a retry from the crashed state must converge to a migrated trace
bit-identical to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.engine.chaos import ChaosFS, IOFault, SimulatedCrash
from repro.trace.chunked import (
    ChunkedTraceReader,
    is_chunked,
    migrate_trace,
)
from repro.trace.io import write_trace
from repro.trace.record import AccessType, RefBatch


N_BATCHES = 3


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    """One v1 npz trace shared across the sweep (sources are read-only)."""
    path = str(tmp_path_factory.mktemp("src") / "trace.npz")
    rng = np.random.default_rng(7)
    batches = [
        RefBatch.from_access(
            rng.integers(0, 1 << 40, size=64, dtype=np.uint64),
            AccessType.WRITE if i % 2 else AccessType.READ,
            iteration=i,
        )
        for i in range(N_BATCHES)
    ]
    write_trace(path, batches)
    return path


def assert_absent_or_valid(dst):
    """The migrate invariant at any crash point."""
    container = is_chunked(dst)
    if container is None:
        return
    reader = ChunkedTraceReader(container)
    assert reader.verify_stored() == N_BATCHES
    batches = list(reader)
    assert len(batches) == N_BATCHES


class TestMigrateCrashSweep:
    def test_every_crash_point_leaves_none_or_valid(self, tmp_path, source):
        # enumerate the op sequence of one clean migration
        probe_fs = ChaosFS()
        probe_dst = str(tmp_path / "probe")
        migrate_trace(source, probe_dst, fs=probe_fs)
        ops = list(probe_fs.ops)
        # the publish protocol we are sweeping must actually be present
        assert any(o.startswith("replace:") for o in ops)
        assert ops[-1].startswith("fsync_dir:")
        assert len(ops) > 2 * N_BATCHES

        for i, label in enumerate(ops):
            dst = str(tmp_path / f"crash-{i}")
            fs = ChaosFS(faults=[IOFault("crash", index=i)])
            with pytest.raises(SimulatedCrash):
                migrate_trace(source, dst, fs=fs)
            assert fs.dead, f"crash point {i} ({label}) never fired"
            assert_absent_or_valid(dst)
            # retry on the crashed state (leftover .tmp and all) must
            # converge to the same container a clean run produces
            n, refs = migrate_trace(source, dst)
            assert (n, refs) == (N_BATCHES, N_BATCHES * 64)
            assert_absent_or_valid(dst)

    def test_torn_index_write_never_publishes(self, tmp_path, source):
        """A torn index.bin (machine died mid-write) must not leave a
        readable-looking container behind."""
        dst = str(tmp_path / "torn")
        fs = ChaosFS(faults=[IOFault("torn", op="write:index.bin",
                                     offset=16)])
        with pytest.raises(SimulatedCrash):
            migrate_trace(source, dst, fs=fs)
        assert_absent_or_valid(dst)
        assert is_chunked(dst) is None  # torn before publish: no dst
