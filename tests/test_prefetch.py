"""Stride-prefetcher coverage and the prefetch-aware interval model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.perfsim.core import WorkloadCounts
from repro.perfsim.prefetch import (
    PrefetchAwareModel,
    estimate_prefetch_coverage,
)
from repro.util.rng import make_rng


def counts(llc=5000, mlp=8.0):
    return WorkloadCounts(
        instructions=2_000_000, memory_refs=300_000, l1_misses=30_000,
        llc_misses=llc, mlp=mlp,
    )


class TestCoverage:
    def test_streaming_misses_are_covered(self):
        """Unit-stride misses within pages: everything after warm-up."""
        addrs = np.arange(0, 64 * 64, 64, dtype=np.int64)  # one page, stride 64
        stats = estimate_prefetch_coverage(addrs)
        assert stats.coverage > 0.9
        assert stats.streams == 1

    def test_random_misses_uncovered(self):
        rng = make_rng(0)
        addrs = rng.integers(0, 1 << 30, 3000, dtype=np.int64) // 64 * 64
        stats = estimate_prefetch_coverage(addrs)
        assert stats.coverage < 0.05

    def test_interleaved_streams_tracked_per_page(self):
        """Two interleaved unit-stride streams on different pages both
        lock on — the per-page state is what real prefetchers buy."""
        a = np.arange(0, 32 * 64, 64, dtype=np.int64)
        b = a + (1 << 20)
        interleaved = np.stack([a, b], axis=1).ravel()
        stats = estimate_prefetch_coverage(interleaved)
        assert stats.coverage > 0.85
        assert stats.streams == 2

    def test_constant_address_not_covered(self):
        """Zero deltas never count (no useful prefetch for re-touch)."""
        stats = estimate_prefetch_coverage(np.zeros(100, dtype=np.int64))
        assert stats.covered == 0

    def test_empty(self):
        stats = estimate_prefetch_coverage(np.empty(0, np.int64))
        assert stats.coverage == 0.0


class TestPrefetchAwareModel:
    def test_full_coverage_kills_sensitivity(self):
        m = PrefetchAwareModel(accuracy=1.0)
        w = counts()
        assert m.slowdown(w, 100.0, coverage=1.0) == pytest.approx(1.0)

    def test_zero_coverage_equals_base_model(self):
        from repro.perfsim.core import IntervalCoreModel
        from repro.perfsim.config import TABLE3_CORE

        m = PrefetchAwareModel(accuracy=1.0)
        base = IntervalCoreModel(TABLE3_CORE)
        w = counts()
        assert m.cycles(w, 100.0, coverage=0.0) == pytest.approx(base.cycles(w, 100.0))

    def test_coverage_monotonically_helps(self):
        m = PrefetchAwareModel()
        w = counts()
        slows = [m.slowdown(w, 100.0, c) for c in (0.0, 0.3, 0.6, 0.9)]
        assert all(a >= b for a, b in zip(slows, slows[1:]))

    def test_accuracy_discounts_coverage(self):
        sharp = PrefetchAwareModel(accuracy=1.0)
        blunt = PrefetchAwareModel(accuracy=0.5)
        w = counts()
        assert blunt.slowdown(w, 100.0, 0.8) > sharp.slowdown(w, 100.0, 0.8)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            PrefetchAwareModel(accuracy=1.5)
        with pytest.raises(ConfigurationError):
            PrefetchAwareModel().cycles(counts(), 100.0, coverage=-0.1)


class TestEndToEnd:
    def test_s3d_streaming_benefits_more_than_gtc(self):
        """S3D's stencil misses are stride-predictable; GTC's gather misses
        are not — prefetching reshapes Figure 12 accordingly."""
        from repro.cachesim import MemoryTraceProbe
        from repro.instrument import InstrumentedRuntime
        from tests.conftest import make_app

        coverages = {}
        for name in ("s3d", "gtc"):
            probe = MemoryTraceProbe()
            rt = InstrumentedRuntime(probe)
            make_app(name, refs=8000, iters=3)(rt)
            rt.finish()
            miss_addrs = np.concatenate(
                [b.addr[~b.is_write].astype(np.int64) for b in probe.memory_trace]
            )
            coverages[name] = estimate_prefetch_coverage(miss_addrs).coverage
        assert coverages["s3d"] > coverages["gtc"]
