"""The data-driven application engine itself (repro.apps.base)."""

import numpy as np
import pytest

from repro.apps.base import AppInfo, ModelApp, RoutineSpec, StructureSpec
from repro.scavenger import NVScavenger


class TinyApp(ModelApp):
    """A minimal spec exercising every engine feature."""

    info = AppInfo("tiny", "unit-test input", "engine test", 16.0)
    structures = (
        StructureSpec("ro", "global", 0.10, reads=0.10, writes=0.0,
                      tags=frozenset({"read_only"})),
        StructureSpec("field", "global", 0.30, reads=0.20, writes=0.10,
                      pattern="sequential"),
        StructureSpec("blk", "common", 0.10, reads=0.05, writes=0.01,
                      members=(("a", 0.5), ("b", 0.5))),
        StructureSpec("hp", "heap", 0.20, reads=0.08, writes=0.04,
                      pattern="random"),
        StructureSpec("tmp", "heap", 0.05, reads=0.02, writes=0.02,
                      short_term=True),
        StructureSpec("pre_only", "global", 0.10, reads=0.01, writes=0.01,
                      phase="pre"),
        StructureSpec("post_only", "heap", 0.05, reads=0.01, writes=0.01,
                      phase="post"),
        StructureSpec("sparse", "global", 0.10, reads=0.04, writes=0.0,
                      active_iterations=(2, 4)),
    )
    routines = (
        RoutineSpec("kern_a", local_kb=4, reads=0.20, writes=0.05),
        RoutineSpec("kern_b", local_kb=2, reads=0.06, writes=0.01,
                    first_iteration_scale=(1.0, 3.0)),
    )


def analyze(refs=5000, iters=5, seed=0, cls=TinyApp):
    app = cls(scale=1.0 / 4.0, refs_per_iteration=refs, n_iterations=iters, seed=seed)
    return NVScavenger().analyze(app, n_main_iterations=iters), app


class TestEngine:
    def test_reference_budget_respected(self):
        res, app = analyze(refs=5000, iters=5)
        per_iter = res.total_refs / 5
        # rounding and first-iteration scaling perturb mildly
        assert per_iter == pytest.approx(5000, rel=0.08)

    def test_pre_post_structures_never_referenced_in_loop(self):
        res, _ = analyze()
        pre = res.metrics_by_name("pre_only")
        assert pre.refs == 0
        assert pre.iterations_touched == 0
        post = next(m for m in res.object_metrics if "post_only" in m.name)
        assert post.refs == 0

    def test_sparse_structure_touched_only_when_active(self):
        res, _ = analyze()
        sparse = res.metrics_by_name("sparse")
        assert sparse.iterations_touched == 2
        assert np.all(sparse.reads_per_iter[[1, 3, 5]] == 0)
        assert sparse.reads_per_iter[2] > 0 and sparse.reads_per_iter[4] > 0

    def test_read_only_structure_stays_read_only(self):
        res, _ = analyze()
        assert res.metrics_by_name("ro").read_only

    def test_common_block_merged(self):
        res, _ = analyze()
        blk = next(m for m in res.object_metrics if "blk" in m.name)
        assert "%a" in blk.name and "%b" in blk.name

    def test_short_term_heap_excluded_from_usage(self):
        res, _ = analyze()
        usage_names = set()
        # usage excludes short-term heap; total bytes must be less than the
        # sum over all objects
        all_bytes = sum(m.size for m in res.object_metrics)
        assert res.usage.total_bytes < all_bytes

    def test_first_iteration_write_scale(self):
        res, _ = analyze(refs=20_000)
        s = res.stack_summary
        # kern_b triples its writes in iteration 1: the aggregate stack
        # ratio is lower there
        assert s.rw_ratio(iteration=1) < s.rw_ratio(iteration=2)

    def test_jitter_zero_means_identical_iterations(self):
        res, _ = analyze()
        field = res.metrics_by_name("field")
        main = field.reads_per_iter[1:]
        assert np.all(main == main[0])

    def test_footprint_scales(self):
        _, app4 = analyze()
        app2 = TinyApp(scale=1.0 / 2.0, refs_per_iteration=1000, n_iterations=2)
        assert app2.footprint_bytes == 2 * app4.footprint_bytes

    def test_seed_changes_random_patterns_not_counts(self):
        res_a, _ = analyze(seed=1)
        res_b, _ = analyze(seed=2)
        assert res_a.total_refs == res_b.total_refs
        hp_a = next(m for m in res_a.object_metrics if "hp" in m.name)
        hp_b = next(m for m in res_b.object_metrics if "hp" in m.name)
        assert hp_a.reads == hp_b.reads  # weights drive counts


class JitterApp(ModelApp):
    info = AppInfo("jittery", "x", "x", 4.0)
    structures = (
        StructureSpec("wobbly", "global", 0.5, reads=0.5, writes=0.1,
                      rate_jitter=0.8),
    )
    routines = (RoutineSpec("k", local_kb=1, reads=0.3, writes=0.1),)


class TestJitter:
    def test_jitter_varies_across_iterations(self):
        res, _ = analyze(cls=JitterApp, refs=8000, iters=6)
        wobbly = res.metrics_by_name("wobbly")
        main = wobbly.reads_per_iter[1:]
        assert len(set(main.tolist())) > 1

    def test_jitter_deterministic_per_seed(self):
        res_a, _ = analyze(cls=JitterApp, seed=3)
        res_b, _ = analyze(cls=JitterApp, seed=3)
        a = res_a.metrics_by_name("wobbly").reads_per_iter
        b = res_b.metrics_by_name("wobbly").reads_per_iter
        assert np.array_equal(a, b)


class TestOffsetPatterns:
    @pytest.mark.parametrize(
        "pattern", ["sequential", "strided", "random", "hotspot", "gather"]
    )
    def test_offsets_in_bounds_and_counted(self, pattern):
        app = TinyApp(scale=0.25, refs_per_iteration=1000, n_iterations=1)
        rng = np.random.default_rng(0)
        out = app._offsets(pattern, 1000, 137, rng, phase=13)
        assert len(out) == 137
        assert out.min() >= 0 and out.max() < 1000

    def test_sequential_covers_large_arrays(self):
        """The full-sweep property: offsets spread over the whole array."""
        app = TinyApp(scale=0.25, refs_per_iteration=1000, n_iterations=1)
        rng = np.random.default_rng(0)
        out = app._offsets("sequential", 100_000, 100, rng)
        assert out.max() > 90_000
