"""The reproduction gate itself."""

import pytest

from repro.experiments import ExperimentContext
from repro.validation import Criterion, render, validate


@pytest.fixture(scope="module")
def criteria():
    # gate fidelity: enough statistics for every criterion to be meaningful
    ctx = ExperimentContext(refs_per_iteration=15_000, scale=1.0 / 128.0)
    return validate(ctx)


def test_all_criteria_pass(criteria):
    failing = [c for c in criteria if not c.passed]
    assert not failing, "\n".join(f"{c.cid}: {c.detail}" for c in failing)


def test_gate_covers_every_table_and_figure(criteria):
    ids = {c.cid for c in criteria}
    assert {"T5-order", "T5-share", "F2-tail", "F3-6-ro", "F5-gtc",
            "F7-order", "F8-11", "T6-band", "T6-save", "F12-shape",
            "ABS-31/27"} <= ids


def test_render_format(criteria):
    text = render(criteria)
    assert "reproduction gate" in text
    assert f"{sum(c.passed for c in criteria)}/{len(criteria)} criteria pass" in text
    for c in criteria:
        assert c.cid in text


def test_render_shows_failures():
    text = render([Criterion("X-1", "always fails", False, "boom")])
    assert "[FAIL]" in text
    assert "boom" in text
    assert "0/1 criteria pass" in text


def test_crashing_predicate_reports_failure():
    from repro.validation import _check

    out = []
    _check(out, "C", "crashes", lambda: 1 / 0)
    assert not out[0].passed
    assert "ZeroDivisionError" in out[0].detail
