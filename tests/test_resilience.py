"""Fault injection, the checkpoint/restart engine, and the hardened runner."""

import math

import numpy as np
import pytest

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ExperimentAbortedError,
    FaultInjectionError,
)
from repro.experiments import ExperimentContext, ExperimentResult
from repro.experiments.runner import experiments_markdown, run_all
from repro.hybrid.checkpoint import NVRAM_LOCAL, PFS_DISK, plan_checkpoints
from repro.resilience import (
    SCENARIOS,
    CheckpointEngine,
    FaultInjector,
    FaultScenario,
    SyntheticTimestepApp,
    get_scenario,
    measure_efficiency,
    register_scenario,
)
from repro.util.units import GiB


class TestFaultInjector:
    def test_crash_times_deterministic(self):
        a = FaultInjector("crashes", seed=42)
        b = FaultInjector("crashes", seed=42)
        times_a = [a.next_crash_time(0.0) for _ in range(10)]
        times_b = [b.next_crash_time(0.0) for _ in range(10)]
        assert times_a == times_b
        assert all(t > 0 for t in times_a)

    def test_different_seeds_differ(self):
        a = FaultInjector("crashes", seed=1)
        b = FaultInjector("crashes", seed=2)
        assert a.next_crash_time(0.0) != b.next_crash_time(0.0)

    def test_no_mtbf_means_no_crashes(self):
        inj = FaultInjector("none", seed=0)
        assert inj.next_crash_time(0.0) == math.inf
        assert not inj.corrupts_checkpoint(1 * GiB)

    def test_scenario_registry(self):
        assert {"none", "crashes", "bitflips", "wearout", "hostile"} <= set(SCENARIOS)
        assert get_scenario("hostile").bitflip_per_gib > 0
        with pytest.raises(FaultInjectionError):
            get_scenario("nope")
        with pytest.raises(FaultInjectionError):
            register_scenario(FaultScenario("crashes", "dup", mtbf_s=1.0))

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultScenario("bad", "x", mtbf_s=0.0)
        with pytest.raises(FaultInjectionError):
            FaultScenario("bad", "x", bitflip_per_gib=-1.0)
        with pytest.raises(FaultInjectionError):
            FaultScenario("bad", "x", endurance_writes=0)
        with pytest.raises(FaultInjectionError):
            FaultInjector(object())  # type: ignore[arg-type]

    def test_flip_random_byte_flips_exactly_one_bit(self):
        inj = FaultInjector("bitflips", seed=0)
        buf = np.zeros(16, np.float64)
        inj.flip_random_byte(buf)
        raw = buf.view(np.uint8)
        assert int(np.unpackbits(raw).sum()) == 1

    def test_wearout_mask(self):
        inj = FaultInjector("wearout", seed=0)
        endurance = SCENARIOS["wearout"].endurance_writes
        counts = np.array([0, endurance - 1, endurance, endurance + 5])
        assert inj.wearout_failed_lines(counts).tolist() == [False, False, True, True]
        none = FaultInjector("none", seed=0)
        assert not none.wearout_failed_lines(counts).any()


class TestCheckpointEngine:
    def test_fault_free_run_measures_pure_overhead(self):
        engine = CheckpointEngine(
            NVRAM_LOCAL, FaultInjector("none", seed=0),
            footprint_bytes=1 * GiB, timestep_s=10.0, interval_s=100.0)
        report = engine.run(SyntheticTimestepApp(1000, seed=0))
        assert report.n_crashes == 0
        delta = NVRAM_LOCAL.checkpoint_seconds(1 * GiB)
        expected = 100.0 / (100.0 + delta)
        assert report.measured_efficiency == pytest.approx(expected, rel=1e-6)

    def test_measured_matches_analytic_within_10pct(self):
        # The acceptance criterion: with crashes injected at a given MTBF,
        # the simulated efficiency validates plan_checkpoints() for both
        # targets within 10% relative error.
        for target in (PFS_DISK, NVRAM_LOCAL):
            report = measure_efficiency(
                target, 1 * GiB, scenario="crashes", seed=0, useful_s=400_000.0)
            analytic = plan_checkpoints(
                1 * GiB, SCENARIOS["crashes"].mtbf_s, target).efficiency
            assert report.analytic_efficiency == pytest.approx(analytic)
            assert report.n_crashes > 5
            assert report.relative_error < 0.10, target.name

    def test_nvram_beats_disk_under_faults(self):
        disk = measure_efficiency(PFS_DISK, 1 * GiB, seed=0, useful_s=400_000.0)
        nv = measure_efficiency(NVRAM_LOCAL, 1 * GiB, seed=1, useful_s=400_000.0)
        assert nv.measured_efficiency > disk.measured_efficiency

    def test_restore_and_replay_is_consistent(self):
        # Two apps executing the same logical steps must end bit-identical,
        # no matter how many crashes/restores interrupted one of them.
        reference = SyntheticTimestepApp(5000, seed=7)
        for step in range(reference.n_steps):
            reference.advance(step)
        engine = CheckpointEngine(
            PFS_DISK, FaultInjector("bitflips", seed=5),
            footprint_bytes=1 * GiB, timestep_s=40.0)
        faulted = SyntheticTimestepApp(5000, seed=7)
        report = engine.run(faulted)
        assert report.n_crashes > 0
        assert faulted.digest() == reference.digest()
        assert report.wall_s > report.useful_s

    def test_corrupt_checkpoints_fall_back_to_older_buffer(self):
        # A ~30%-per-image bit-flip rate corrupts many checkpoints; the
        # CRC check at restore must detect it and fall back (or restart
        # from scratch) — and the run must still finish consistently.
        scenario = FaultScenario(
            "test-heavy-bitflips", "test", mtbf_s=10_000.0, bitflip_per_gib=0.36)
        engine = CheckpointEngine(
            PFS_DISK, FaultInjector(scenario, seed=0),
            footprint_bytes=1 * GiB, timestep_s=40.0)
        app = SyntheticTimestepApp(1000, seed=3)
        report = engine.run(app)
        reference = SyntheticTimestepApp(1000, seed=3)
        for step in range(reference.n_steps):
            reference.advance(step)
        assert report.n_corrupt_injected > 0
        assert report.n_fallback_restores + report.n_scratch_restarts > 0
        assert app.digest() == reference.digest()

    def test_wearout_exhausts_both_buffers(self):
        with pytest.raises(CheckpointError, match="worn out"):
            measure_efficiency(
                NVRAM_LOCAL, 1 * GiB, scenario="hostile", seed=1,
                useful_s=400_000.0)

    def test_no_progress_guard(self):
        # MTBF far below one checkpoint write: the engine must abort with
        # CheckpointError, not loop forever.
        scenario = FaultScenario("test-thrash", "test", mtbf_s=1.0)
        engine = CheckpointEngine(
            PFS_DISK, FaultInjector(scenario, seed=0),
            footprint_bytes=1 * GiB, timestep_s=40.0, interval_s=40.0,
            max_crashes=200)
        with pytest.raises(CheckpointError, match="forward progress"):
            engine.run(SyntheticTimestepApp(1000, seed=0))

    def test_interval_required_without_mtbf(self):
        with pytest.raises(CheckpointError):
            CheckpointEngine(
                NVRAM_LOCAL, FaultInjector("none", seed=0),
                footprint_bytes=1 * GiB, timestep_s=1.0)

    def test_validates_configuration(self):
        inj = FaultInjector("crashes", seed=0)
        with pytest.raises(ConfigurationError):
            CheckpointEngine(NVRAM_LOCAL, inj, footprint_bytes=0, timestep_s=1.0)
        with pytest.raises(ConfigurationError):
            CheckpointEngine(NVRAM_LOCAL, inj, footprint_bytes=1, timestep_s=0.0)
        with pytest.raises(ConfigurationError):
            SyntheticTimestepApp(0)


def _ok_experiment(exp_id):
    def run(ctx):
        return ExperimentResult(exp_id, "ok", "fine", [{"v": ctx.seed}])
    return run


def _failing_experiment(ctx):
    raise RuntimeError("injected mid-suite failure")


class TestHardenedRunner:
    def test_failure_is_isolated_and_rendered(self):
        ctx = ExperimentContext()
        experiments = {
            "a": _ok_experiment("a"),
            "boom": _failing_experiment,
            "b": _ok_experiment("b"),
        }
        results = run_all(ctx, experiments=experiments, retries=1)
        assert len(results) == 3
        ok = [r for r in results if isinstance(r, ExperimentResult)]
        assert [r.exp_id for r in ok] == ["a", "b"]
        failure = results[1]
        assert failure.exp_id == "boom"
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2  # original + one reseeded retry
        md = experiments_markdown(results, ctx)
        assert "## boom: FAILED" in md
        assert "injected mid-suite failure" in md
        assert "## a: ok" in md and "## b: ok" in md

    def test_retry_reseeds_deterministically(self):
        ctx = ExperimentContext(seed=0)
        seen = []

        def flaky(actx):
            seen.append(actx.seed)
            if actx.seed == 0:
                raise RuntimeError("bad seed")
            return ExperimentResult("flaky", "ok", "recovered", [])

        (result,) = run_all(ctx, experiments={"flaky": flaky}, retries=1)
        assert isinstance(result, ExperimentResult)
        assert seen == [0, 1000]  # seed + attempt * reseed_stride

    def test_strict_raises_experiment_aborted(self):
        ctx = ExperimentContext()
        with pytest.raises(ExperimentAbortedError):
            run_all(ctx, experiments={"boom": _failing_experiment},
                    retries=0, strict=True)

    def test_budget_degrades_refs(self):
        import time

        ctx = ExperimentContext(refs_per_iteration=8000, seed=0)

        def slow_at_full_fidelity(actx):
            if actx.refs_per_iteration >= 8000:
                time.sleep(0.05)
            return ExperimentResult(
                "slow", "ok", "done", [{"refs": actx.refs_per_iteration}])

        (result,) = run_all(
            ctx, experiments={"slow": slow_at_full_fidelity},
            retries=0, budget_s=0.01)
        assert isinstance(result, ExperimentResult)
        assert result.rows[0]["refs"] == 2000  # 8000 / degrade_factor
        assert any("budget" in note for note in result.notes)

    def test_within_budget_untouched(self):
        ctx = ExperimentContext()
        (result,) = run_all(
            ctx, experiments={"a": _ok_experiment("a")}, budget_s=30.0)
        assert result.notes == []


class TestResilienceExperiment:
    def test_agreement_and_paper_claim(self, _resilience_result):
        res = _resilience_result
        assert res.exp_id == "resilience"
        assert len(res.rows) == 4
        for row in res.rows:
            # acceptance: measured vs analytic within 10% for both targets
            assert row["disk_rel_error"] < 0.10
            assert row["nvram_rel_error"] < 0.10
            # the paper's resiliency claim survives measurement
            assert row["nvram_measured"] > row["disk_measured"]
            assert row["disk_crashes"] > 10

    def test_registered_and_in_markdown(self, _resilience_result):
        from repro.experiments.runner import EXPERIMENTS

        assert "resilience" in EXPERIMENTS
        ctx = ExperimentContext()
        md = experiments_markdown([_resilience_result], ctx)
        assert "## resilience:" in md


@pytest.fixture(scope="module")
def _resilience_result():
    from repro.experiments import run_experiment

    ctx = ExperimentContext(refs_per_iteration=5_000, scale=1.0 / 256.0)
    return run_experiment("resilience", ctx)
