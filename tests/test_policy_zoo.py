"""The policy_zoo sweep: grid shape, caching, parallel/queue identity, CLI.

The sweep's contract is trace-once/replay-many taken one level further:
each workload trace is one content-addressed recording, each cell is a
pure function of it, so a second run replays everything and a parallel
or queue-transport run is bit-identical to the sequential one.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.cli import main as cli_main
from repro.experiments import policy_zoo
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_all

# full 10-iteration runs: the threshold-vs-baseline margin the
# acceptance tests assert needs enough per-epoch traffic to cross the
# promotion thresholds
FAST = dict(refs_per_iteration=6_000, scale=1.0 / 256.0, n_iterations=10)

N_CELLS = (len(policy_zoo.POLICY_GRID) * len(policy_zoo.WORKLOADS)
           * len(policy_zoo.DEVICES) * len(policy_zoo.BUDGET_FACTORS))

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel suite tests exercise the fork start method",
)


def make_ctx(path, **kw):
    return ExperimentContext(cache_dir=str(path / "cache"), apps=(),
                             **{**FAST, **kw})


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One sequential sweep plus its context, shared by the read-only tests."""
    root = tmp_path_factory.mktemp("zoo")
    ctx = make_ctx(root)
    return policy_zoo.run(ctx), ctx, root


class TestSweep:
    def test_registered(self):
        assert EXPERIMENTS["policy_zoo"] is policy_zoo.run

    def test_full_grid(self, sweep):
        res, _, _ = sweep
        assert isinstance(res, ExperimentResult)
        assert len(res.rows) == N_CELLS
        combos = {(r["workload"], r["policy"], r["device"], r["budget_factor"])
                  for r in res.rows}
        assert len(combos) == N_CELLS

    def test_cells_are_content_addressed(self, sweep):
        res, _, _ = sweep
        keys = {r["cell"] for r in res.rows}
        assert len(keys) == N_CELLS
        assert all(len(k) == 64 for k in keys)

    def test_three_recordings_only(self, sweep):
        _, ctx, _ = sweep
        assert ctx.engine.stats.app_runs == len(policy_zoo.ARTIFACTS)

    def test_acceptance_margins(self, sweep):
        res, _, _ = sweep
        tight = {(r["workload"], r["policy"]): r for r in res.rows
                 if r["device"] == "PCRAM" and r["budget_factor"] == 2.0}
        assert (tight[("kvcache", "threshold")]["nvm_write_traffic"]
                < tight[("kvcache", "no_migration")]["nvm_write_traffic"])
        for w in policy_zoo.WORKLOADS:
            assert tight[(w, "endurance_aware")]["endurance_headroom"] >= 0.0

    def test_warm_cache_replays_everything(self, sweep):
        _, _, root = sweep
        warm = make_ctx(root)
        res = policy_zoo.run(warm)
        assert len(res.rows) == N_CELLS
        assert warm.engine.stats.app_runs == 0
        assert warm.engine.stats.cache_hits >= len(policy_zoo.ARTIFACTS)

    def test_warm_rows_bit_identical(self, sweep):
        cold, _, root = sweep
        res = policy_zoo.run(make_ctx(root))
        assert res.rows == cold.rows
        assert res.text == cold.text


@needs_fork
class TestParallelIdentity:
    def test_jobs2_bit_identical(self, sweep, tmp_path):
        cold, _, _ = sweep
        ctx = make_ctx(tmp_path)
        results = run_all(ctx, experiments={"policy_zoo": policy_zoo.run},
                          jobs=2)
        (res,) = results
        assert isinstance(res, ExperimentResult)
        assert res.rows == cold.rows
        assert res.text == cold.text

    def test_queue_transport_bit_identical(self, sweep, tmp_path):
        cold, _, _ = sweep
        ctx = make_ctx(tmp_path)
        results = run_all(ctx, experiments={"policy_zoo": policy_zoo.run},
                          jobs=2, transport="queue")
        (res,) = results
        assert isinstance(res, ExperimentResult)
        assert res.rows == cold.rows


class TestCLI:
    def test_policies_ls(self, capsys):
        assert cli_main(["policies", "ls"]) == 0
        out = capsys.readouterr().out
        for name in ("no_migration", "static_oracle", "threshold",
                     "predictive", "endurance_aware"):
            assert name in out

    def test_sweep_runs_and_reuses_cache(self, tmp_path, capsys):
        argv = ["policies", "sweep", "--refs", "2000", "--scale",
                str(1.0 / 256.0), "--iterations", "3",
                "--cache-dir", str(tmp_path / "cache")]
        assert cli_main(argv) == 0
        cold = capsys.readouterr().out
        assert "60 cells" in cold
        assert cli_main(argv) == 0
        warm = capsys.readouterr().out
        assert "app runs: 0" in warm
        # the sweep table itself is identical run-to-run
        assert cold.split("app runs:")[0] == warm.split("app runs:")[0]

    @pytest.mark.parametrize("argv", [
        ["policies", "sweep", "--refs", "0"],
        ["policies", "sweep", "--scale", "-1"],
        ["policies", "sweep", "--jobs", "-2"],
    ])
    def test_bad_flags_exit_2(self, argv, capsys):
        assert cli_main(argv) == 2
        assert "error" in capsys.readouterr().err
