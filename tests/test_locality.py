"""Locality analyzer: score separation and histogram bookkeeping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scavenger.locality import LocalityAnalyzer
from repro.trace.record import AccessType, RefBatch
from repro.util.rng import make_rng


def batch(addrs):
    return RefBatch.from_access(np.asarray(addrs, dtype=np.uint64), AccessType.READ)


def run(addr_arrays):
    a = LocalityAnalyzer()
    for arr in addr_arrays:
        a.on_batch(batch(arr))
    return a.scores()


def test_streaming_has_high_spatial_low_temporal():
    s = run([np.arange(5000) * 64])
    assert s.spatial > 0.5
    assert s.temporal < 0.1


def test_hot_loop_has_high_temporal():
    s = run([np.arange(64) * 64] * 30)
    assert s.temporal > 0.15
    assert s.spatial > 0.5


def test_random_has_low_both():
    rng = make_rng(0)
    s = run([rng.integers(0, 1 << 28, 5000, dtype=np.uint64) & ~np.uint64(63)])
    assert s.spatial < 0.05
    assert s.temporal < 0.05


def test_scores_bounded():
    rng = make_rng(1)
    for pattern in (np.arange(100) * 64, rng.integers(0, 1 << 20, 100, dtype=np.uint64)):
        s = run([pattern])
        assert 0.0 <= s.temporal <= 1.0
        assert 0.0 <= s.spatial <= 1.0


def test_histograms_account_every_ref():
    s = run([np.arange(100) * 64, np.arange(100) * 64])
    assert s.refs == 200
    assert s.reuse_histogram.sum() == 200
    assert s.stride_histogram.sum() == 199  # 99 + cross-batch + 99


def test_reuse_across_batches():
    """A line touched in batch 1 and again in batch 2 is warm, not cold."""
    a = LocalityAnalyzer()
    a.on_batch(batch([0]))
    a.on_batch(batch([0]))
    s = a.scores()
    assert s.reuse_histogram[-1] == 1  # only the first touch is cold
    assert s.reuse_histogram[:-1].sum() == 1


def test_within_batch_repeats_resolved():
    a = LocalityAnalyzer()
    a.on_batch(batch([0, 64, 0, 64]))
    s = a.scores()
    assert s.reuse_histogram[-1] == 2  # two cold lines
    assert s.reuse_histogram[:-1].sum() == 2  # two warm reuses


def test_empty_batch_noop():
    a = LocalityAnalyzer()
    a.on_batch(RefBatch.empty())
    assert a.scores().refs == 0


def test_invalid_params():
    with pytest.raises(ConfigurationError):
        LocalityAnalyzer(line_bytes=48)
    with pytest.raises(ConfigurationError):
        LocalityAnalyzer(n_bins=2)


def test_apps_locality_ordering(analyzed_apps):
    """GTC (gather/scatter PIC) has worse spatial locality than S3D
    (streaming stencil DNS) — the §II low-locality argument."""
    from repro.instrument import InstrumentedRuntime
    from repro.instrument.api import FanoutProbe
    from tests.conftest import make_app

    scores = {}
    for name in ("gtc", "s3d"):
        loc = LocalityAnalyzer()
        rt = InstrumentedRuntime(FanoutProbe([loc]))
        make_app(name, refs=6000, iters=3)(rt)
        rt.finish()
        scores[name] = loc.scores()
    assert scores["gtc"].spatial < scores["s3d"].spatial
