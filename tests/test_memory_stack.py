"""Stack manager: SP tracking, shadow stack, frame attribution."""

import pytest

from repro.errors import StackError
from repro.memory.layout import Segment, SegmentKind
from repro.memory.stack import StackManager


def make_stack(size=1 << 16, base=0x10000):
    return StackManager(Segment(SegmentKind.STACK, base, base + size))


def test_initial_state():
    s = make_stack()
    assert s.sp == s.segment.limit
    assert s.max_extent == s.segment.limit
    assert s.depth == 0
    with pytest.raises(StackError):
        s.current_frame


def test_push_pop_moves_sp():
    s = make_stack()
    top = s.sp
    f = s.push_frame("main", 100)
    assert f.size == 112  # aligned to 16
    assert s.sp == top - 112
    assert s.max_extent == s.sp
    s.pop_frame()
    assert s.sp == top
    assert s.max_extent == top - 112  # max extent is sticky


def test_nested_frames_and_callstack():
    s = make_stack()
    s.push_frame("a", 64)
    s.push_frame("b", 32)
    s.push_frame("c", 16)
    assert s.callstack_names() == ("a", "b", "c")
    assert s.depth == 3
    assert s.current_frame.routine == "c"
    s.pop_frame()
    assert s.callstack_names() == ("a", "b")


def test_pop_empty_raises():
    s = make_stack()
    with pytest.raises(StackError):
        s.pop_frame()


def test_overflow():
    s = make_stack(size=256)
    with pytest.raises(StackError):
        s.push_frame("big", 512)


def test_negative_frame():
    s = make_stack()
    with pytest.raises(StackError):
        s.push_frame("neg", -1)


def test_is_stack_address_uses_max_extent():
    s = make_stack()
    s.push_frame("deep", 1024)
    addr_inside = s.sp + 10
    s.pop_frame()
    # the paper's test compares against the *maximum* extent: an address in
    # the popped frame still counts as stack
    assert s.is_stack_address(addr_inside)
    assert not s.is_stack_address(s.max_extent - 1)
    assert not s.is_stack_address(s.segment.limit)


def test_owner_frame_attribution():
    s = make_stack()
    fa = s.push_frame("caller", 128)
    fb = s.push_frame("callee", 64)
    addr_in_caller = fa.sp + 8
    addr_in_callee = fb.sp + 8
    # the callee accessing below its own frame attributes to the caller,
    # "because it is the previously called routine that really allocates
    # data on the stack"
    assert s.owner_frame(addr_in_caller).routine == "caller"
    assert s.owner_frame(addr_in_callee).routine == "callee"
    assert s.owner_frame(s.segment.base) is None


def test_alloc_local():
    s = make_stack()
    f = s.push_frame("r", 256)
    a1 = s.alloc_local("x", 64)
    a2 = s.alloc_local("y", 64)
    assert f.contains(a1) and f.contains(a2)
    assert a2 == a1 - 64  # locals carved downward
    assert f.variables["x"] == (a1, 64)


def test_alloc_local_overflow():
    s = make_stack()
    s.push_frame("r", 64)
    with pytest.raises(StackError):
        s.alloc_local("too_big", 128)


def test_zero_size_frame():
    s = make_stack()
    f = s.push_frame("empty", 0)
    assert f.size == 0
    assert not f.contains(s.sp)
