"""Cache hierarchy: memory-trace extraction semantics."""

import numpy as np
import pytest

from repro.cachesim.config import CacheHierarchyConfig, CacheLevelConfig, TABLE2_CONFIG
from repro.cachesim.filtered import MemoryTraceProbe
from repro.cachesim.hierarchy import CacheHierarchy
from repro.trace.record import AccessType, RefBatch


def tiny_config(l1_lines=4, l2_lines=16):
    return CacheHierarchyConfig(
        levels=(
            CacheLevelConfig("L1D", size_bytes=l1_lines * 64, associativity=2,
                             write_allocate=False),
            CacheLevelConfig("L2", size_bytes=l2_lines * 64, associativity=4),
        )
    )


def batch_from_lines(lines, write=False, iteration=0):
    addrs = np.asarray(lines, dtype=np.uint64) * 64
    return RefBatch.from_access(addrs, AccessType.WRITE if write else AccessType.READ,
                                iteration=iteration)


def test_cold_read_misses_reach_memory():
    h = CacheHierarchy(tiny_config())
    mem = h.process_batch(batch_from_lines([0, 1, 2]))
    assert len(mem) == 3
    assert mem.n_reads == 3
    assert (mem.addr == np.array([0, 64, 128], dtype=np.uint64)).all()


def test_repeat_hits_generate_no_memory_traffic():
    h = CacheHierarchy(tiny_config())
    h.process_batch(batch_from_lines([0, 1]))
    mem = h.process_batch(batch_from_lines([0, 1, 0, 1]))
    assert len(mem) == 0
    assert h.stats().levels["L1D"].read_hits == 4


def test_table2_defaults():
    h = CacheHierarchy()
    assert h.config is TABLE2_CONFIG
    assert h.levels[0].config.n_sets == 128
    assert h.levels[1].config.n_sets == 1024


def test_store_miss_bypasses_l1():
    h = CacheHierarchy(tiny_config())
    h.process_batch(batch_from_lines([5], write=True))
    stats = h.stats()
    assert stats.levels["L1D"].write_misses == 1
    # the store landed in L2 as a dirty line (write-allocate): one fill
    assert stats.levels["L2"].write_misses == 1
    assert stats.memory_reads == 1
    assert not h.levels[0].contains(5)
    assert h.levels[1].contains(5)


def test_writeback_chain_to_memory():
    """Dirty L1 victim -> L2; dirty L2 victim -> memory write."""
    cfg = CacheHierarchyConfig(
        levels=(
            CacheLevelConfig("L1D", size_bytes=1 * 64, associativity=1,
                             write_allocate=True),
            CacheLevelConfig("L2", size_bytes=2 * 64, associativity=1),
        )
    )
    h = CacheHierarchy(cfg)
    h.process_batch(batch_from_lines([0], write=True))  # dirty in L1
    h.process_batch(batch_from_lines([1], write=True))  # evicts 0 into L2
    # L2 is direct-mapped with 2 sets; line 2 conflicts with line 0
    h.process_batch(batch_from_lines([2], write=True))  # L1 evicts 1->L2; 2 dirty in L1
    h.process_batch(batch_from_lines([4], write=True))  # L1 evicts 2 -> L2 set0 evicts 0
    mem = h.flush()
    # every dirtied line must eventually reach memory exactly once
    all_writes = sorted((h.memory_writes, ))
    assert h.memory_writes >= 1
    written_lines = set()
    # flush returns remaining dirty lines
    written_lines.update((mem.addr[mem.is_write] // 64).tolist())
    assert written_lines  # something drained


def test_flush_drains_all_dirty_data():
    h = CacheHierarchy(tiny_config())
    lines = list(range(8))
    h.process_batch(batch_from_lines(lines, write=True))
    mem = h.flush()
    drained = sorted(set((mem.addr[mem.is_write] // 64).tolist()))
    assert drained == lines
    assert h.levels[0].resident_lines() == 0
    assert h.levels[1].resident_lines() == 0


def test_every_dirty_line_reaches_memory_exactly_once():
    """Conservation: each written line appears exactly once as a memory
    write across steady-state writebacks + final flush."""
    h = CacheHierarchy(tiny_config(l1_lines=2, l2_lines=4))
    written = list(range(12))
    mems = [h.process_batch(batch_from_lines(written, write=True))]
    mems.append(h.flush())
    out = np.concatenate([m.addr[m.is_write] for m in mems]) // 64
    counts = {}
    for line in out.tolist():
        counts[line] = counts.get(line, 0) + 1
    assert sorted(counts) == written
    assert all(v == 1 for v in counts.values())


def test_oid_propagated_to_memory_trace():
    h = CacheHierarchy(tiny_config())
    b = RefBatch.from_access(np.array([0], dtype=np.uint64), AccessType.READ, oid=42)
    mem = h.process_batch(b)
    assert mem.oid.tolist() == [42]


def test_iteration_propagated():
    h = CacheHierarchy(tiny_config())
    mem = h.process_batch(batch_from_lines([0], iteration=7))
    assert mem.iteration == 7


def test_empty_batch():
    h = CacheHierarchy(tiny_config())
    assert len(h.process_batch(RefBatch.empty())) == 0


def test_stats_aggregation():
    h = CacheHierarchy(tiny_config())
    h.process_batch(batch_from_lines([0, 0, 1]))
    s = h.stats()
    assert s.refs == 3
    assert s.memory_reads == 2
    assert s.memory_accesses_per_ref == pytest.approx(2 / 3)
    assert 0 < s.llc_miss_rate <= 1


class TestMemoryTraceProbe:
    def test_collects_and_forwards(self):
        forwarded = []
        p = MemoryTraceProbe(tiny_config(), sink=forwarded.append)
        p.on_batch(batch_from_lines([0, 1], write=True))
        p.on_finish()
        collected = sum(len(b) for b in p.memory_trace)
        assert collected == sum(len(b) for b in forwarded)
        assert collected >= 4  # 2 fills + 2 flush writebacks

    def test_no_flush_mode(self):
        p = MemoryTraceProbe(tiny_config(), flush_at_end=False)
        p.on_batch(batch_from_lines([0], write=True))
        p.on_finish()
        assert sum(b.n_writes for b in p.memory_trace) == 0
