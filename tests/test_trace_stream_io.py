"""Stream combinators and trace file round-trips."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import TraceReader, TraceWriter, read_trace, write_trace
from repro.trace.record import AccessType, RefBatch
from repro.trace.stream import batch_windows, concat_batches, filter_batch, split_by_predicate


def make_batch(n, iteration=0):
    return RefBatch.from_access(np.arange(n, dtype=np.uint64) * 8, AccessType.READ,
                                iteration=iteration)


class TestStream:
    def test_concat(self):
        c = concat_batches([make_batch(3), make_batch(4)])
        assert len(c) == 7

    def test_concat_empty(self):
        assert len(concat_batches([])) == 0
        assert len(concat_batches([RefBatch.empty()])) == 0

    def test_concat_mixed_iterations_raises(self):
        with pytest.raises(TraceError):
            concat_batches([make_batch(2, 0), make_batch(2, 1)])

    def test_filter(self):
        b = make_batch(10)
        f = filter_batch(b, lambda x: x.addr >= 40)
        assert len(f) == 5

    def test_split(self):
        b = make_batch(10)
        lo, hi = split_by_predicate(b, lambda x: x.addr < 24)
        assert len(lo) == 3 and len(hi) == 7

    def test_windows(self):
        b = make_batch(10)
        ws = list(batch_windows(b, 4))
        assert [len(w) for w in ws] == [4, 4, 2]
        assert np.concatenate([w.addr for w in ws]).tolist() == b.addr.tolist()

    def test_windows_bad(self):
        with pytest.raises(TraceError):
            list(batch_windows(make_batch(2), 0))


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.npz"
        batches = [make_batch(5, 0), make_batch(7, 1)]
        write_trace(path, batches)
        back = read_trace(path)
        assert len(back) == 2
        for orig, rt in zip(batches, back):
            assert np.array_equal(orig.addr, rt.addr)
            assert np.array_equal(orig.is_write, rt.is_write)
            assert orig.iteration == rt.iteration

    def test_empty_batches_skipped(self, tmp_path):
        path = tmp_path / "t.npz"
        write_trace(path, [RefBatch.empty(), make_batch(3)])
        assert len(read_trace(path)) == 1

    def test_writer_context_manager(self, tmp_path):
        path = tmp_path / "t.npz"
        with TraceWriter(path) as w:
            w.append(make_batch(4))
        with TraceReader(path) as r:
            assert r.n_batches == 1

    def test_append_after_close(self, tmp_path):
        path = tmp_path / "t.npz"
        w = TraceWriter(path)
        w.close()
        with pytest.raises(TraceError):
            w.append(make_batch(1))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, foo=np.arange(3))
        with pytest.raises(TraceError):
            TraceReader(path)
