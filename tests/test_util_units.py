"""Unit formatting and constants."""

import pytest

from repro.util.units import GiB, KiB, MiB, fmt_bytes, fmt_time_ns


def test_constants_relationship():
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB
    assert KiB == 1024


@pytest.mark.parametrize(
    "n, expected",
    [
        (0, "0 B"),
        (512, "512 B"),
        (1024, "1.00 KiB"),
        (1536, "1.50 KiB"),
        (MiB, "1.00 MiB"),
        (2.5 * GiB, "2.50 GiB"),
    ],
)
def test_fmt_bytes(n, expected):
    assert fmt_bytes(n) == expected


def test_fmt_bytes_negative():
    assert fmt_bytes(-1536) == "-1.50 KiB"


@pytest.mark.parametrize(
    "t, expected",
    [
        (5.0, "5.0 ns"),
        (1500.0, "1.500 us"),
        (2.5e6, "2.500 ms"),
        (3e9, "3.000 s"),
    ],
)
def test_fmt_time(t, expected):
    assert fmt_time_ns(t) == expected
