"""repro.sched: task graph, worker pool, exactly-once, crash recovery.

The contract under test:

* the suite expands into a deterministic task graph — one record task
  per *distinct* run spec (content-addressed dedup), experiment tasks
  ordered after the records they declare;
* ``run_all(jobs=N)`` returns results bit-identical to ``jobs=1`` —
  same order, same texts/rows/notes — for any N;
* each distinct spec executes its application exactly once across the
  whole worker pool (merged ``app_runs`` equals the number of distinct
  specs);
* a worker that dies or hangs mid-task is retried on a fresh worker
  with a deterministic reseed; exhausted retries become a structured
  :class:`ExperimentFailure` (strict mode raises instead).
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.errors import ConfigurationError, ExperimentAbortedError, SchedulerError
from repro.experiments.common import ExperimentContext, ExperimentResult
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.resilience.harness import ExperimentFailure
from repro.sched import (
    TASK_FINISHED,
    TASK_RETRIED,
    TASK_STARTED,
    ExperimentTask,
    RecordTask,
    TaskGraph,
    build_suite_graph,
    resolve_jobs,
    run_suite_parallel,
)
from repro.sched.graph import EXPERIMENT_PREFIX, RECORD_PREFIX

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="scheduler tests exercise the fork start method",
)

FAST = dict(refs_per_iteration=3_000, scale=1.0 / 256.0, n_iterations=3)


def make_ctx(tmp_path, **kw):
    merged = {**FAST, **kw}
    return ExperimentContext(cache_dir=str(tmp_path / "cache"), **merged)


# ----------------------------------------------------------------------
class TestTaskGraph:
    def test_duplicate_task_id_rejected(self):
        t = ExperimentTask(task_id="exp:a", exp_id="a")
        with pytest.raises(SchedulerError, match="duplicate"):
            TaskGraph([t, t])

    def test_unknown_dependency_rejected(self):
        t = ExperimentTask(task_id="exp:a", exp_id="a", deps=("record:ghost",))
        with pytest.raises(SchedulerError, match="unknown task"):
            TaskGraph([t])

    def test_cycle_rejected(self):
        a = ExperimentTask(task_id="exp:a", exp_id="a", deps=("exp:b",))
        b = ExperimentTask(task_id="exp:b", exp_id="b", deps=("exp:a",))
        with pytest.raises(SchedulerError, match="cycle"):
            TaskGraph([a, b])

    def test_ready_respects_deps_and_insertion_order(self):
        r = RecordTask(task_id="record:x", name="x", spec=None)
        a = ExperimentTask(task_id="exp:a", exp_id="a", deps=("record:x",))
        b = ExperimentTask(task_id="exp:b", exp_id="b")
        g = TaskGraph([r, a, b])
        assert g.ready(done=(), running=()) == ["record:x", "exp:b"]
        assert g.ready(done=("record:x",), running=("exp:b",)) == ["exp:a"]
        assert g.ready(done=("record:x", "exp:a", "exp:b"), running=()) == []

    def test_suite_graph_dedups_specs_by_key(self, tmp_path):
        ctx = make_ctx(tmp_path)
        exps = {k: EXPERIMENTS[k] for k in ("table1", "fig2", "fig8-11")}
        g = build_suite_graph(ctx, exps)
        specs = [t.spec.key for t in g.record_tasks]
        assert len(specs) == len(set(specs))
        # every context app is recorded; experiments come after records
        names = {t.name for t in g.record_tasks}
        assert set(ctx.apps) <= names
        for t in g.experiment_tasks:
            assert t.task_id == EXPERIMENT_PREFIX + t.exp_id
            for dep in t.deps:
                assert dep.startswith(RECORD_PREFIX)

    def test_undeclared_experiment_depends_on_all_base_apps(self, tmp_path):
        ctx = make_ctx(tmp_path)

        def anonymous(ctx):  # no module-level ARTIFACTS declaration
            return None

        g = build_suite_graph(ctx, {"anon": anonymous})
        (task,) = g.experiment_tasks
        assert set(task.deps) == {RECORD_PREFIX + a for a in ctx.apps}

    def test_width_is_widest_level(self):
        r1 = RecordTask(task_id="record:x", name="x", spec=None)
        r2 = RecordTask(task_id="record:y", name="y", spec=None)
        a = ExperimentTask(task_id="exp:a", exp_id="a",
                           deps=("record:x", "record:y"))
        # level 0: {x, y}; level 1: {a} -> width 2
        assert TaskGraph([r1, r2, a]).width() == 2
        # a pure chain has width 1 regardless of length
        c1 = RecordTask(task_id="record:c1", name="c1", spec=None)
        e1 = ExperimentTask(task_id="exp:e1", exp_id="e1",
                            deps=("record:c1",))
        e2 = ExperimentTask(task_id="exp:e2", exp_id="e2", deps=("exp:e1",))
        assert TaskGraph([c1, e1, e2]).width() == 1
        assert TaskGraph([]).width() == 0

    def test_suite_graph_width_bounds_useful_parallelism(self, tmp_path):
        ctx = make_ctx(tmp_path)
        g = build_suite_graph(ctx, EXPERIMENTS)
        # the record layer is the suite's widest level: every worker
        # beyond that can never be simultaneously busy
        assert 1 <= g.width() <= len(g)
        assert g.width() >= len(ctx.apps)


# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_zero_is_cpu_count(self):
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match="--jobs"):
            resolve_jobs(-2)

    def test_zero_clamps_to_graph_width(self):
        # auto-sizing never spawns more workers than the graph can keep
        # busy at once...
        assert resolve_jobs(0, ready_width=1) == 1
        cpus = max(1, os.cpu_count() or 1)
        assert resolve_jobs(0, ready_width=10_000) == cpus
        # ...and an empty/degenerate width still yields one worker
        assert resolve_jobs(0, ready_width=0) == 1

    def test_explicit_jobs_never_clamped(self):
        # an explicit worker count is an operator decision, not a hint
        assert resolve_jobs(4, ready_width=1) == 4


# ----------------------------------------------------------------------
SUBSET = ("table1", "fig2", "fig7", "capacity")


class TestParallelSuite:
    def test_jobs2_bit_identical_to_sequential(self, tmp_path):
        exps = {k: EXPERIMENTS[k] for k in SUBSET}
        seq_ctx = make_ctx(tmp_path / "seq")
        seq = run_all(seq_ctx, experiments=exps)
        par_ctx = make_ctx(tmp_path / "par")
        events = []
        par = run_all(par_ctx, experiments=exps, jobs=2,
                      on_sched_event=events.append)
        assert [r.exp_id for r in seq] == [r.exp_id for r in par]
        for a, b in zip(seq, par):
            assert isinstance(b, ExperimentResult)
            assert a.text == b.text
            assert a.rows == b.rows
            assert a.notes == b.notes
        # each distinct spec executed exactly once across the pool
        assert par_ctx.engine.stats.app_runs == seq_ctx.engine.stats.app_runs
        # the event stream saw every task start and finish
        kinds = [ev.kind for ev in events]
        assert kinds.count(TASK_STARTED) == kinds.count(TASK_FINISHED)
        assert kinds.count(TASK_FINISHED) >= len(SUBSET)

    def test_report_accounts_for_every_task(self, tmp_path):
        exps = {"table1": EXPERIMENTS["table1"]}
        ctx = make_ctx(tmp_path)
        results, report = run_suite_parallel(ctx, exps, jobs=2)
        assert len(results) == 1 and isinstance(results[0], ExperimentResult)
        assert report.jobs == 2
        assert report.n_experiments == 1
        assert report.n_tasks == report.n_records + report.n_experiments
        assert report.n_failed == 0
        assert len(report.task_wall_s) == report.n_tasks
        assert report.summary().startswith("sched:")
        assert report.to_dict()["wall_s"] > 0


# ----------------------------------------------------------------------
def _crash_first_attempt(ctx):
    """Dies like a segfault unless the scheduler reseeded the context."""
    if ctx.seed < 1000:
        os._exit(17)
    return ExperimentResult(
        exp_id="crashy", title="crash-recovery probe",
        text=f"survived with seed={ctx.seed}")


def _hang_forever(ctx):
    time.sleep(3600)


def _always_crash(ctx):
    os._exit(23)


class TestWorkerFailure:
    def test_killed_worker_is_retried_with_reseed(self, tmp_path):
        ctx = make_ctx(tmp_path, apps=("gtc",))
        events = []
        results, report = run_suite_parallel(
            ctx, {"crashy": _crash_first_attempt}, jobs=1,
            on_event=events.append)
        (res,) = results
        assert isinstance(res, ExperimentResult)
        assert res.text == "survived with seed=1000"
        assert report.n_retries == 1
        retried = [ev for ev in events if ev.kind == TASK_RETRIED]
        assert retried and "exitcode" in retried[0].detail

    def test_exhausted_retries_become_structured_failure(self, tmp_path):
        ctx = make_ctx(tmp_path, apps=("gtc",))
        results, report = run_suite_parallel(
            ctx, {"doomed": _always_crash}, jobs=1)
        (res,) = results
        assert isinstance(res, ExperimentFailure)
        assert res.exp_id == "doomed"
        assert res.error_type == "WorkerCrash"
        assert res.attempts == 2  # first run + one retry
        assert report.n_failed == 1

    def test_hung_worker_is_killed_at_timeout(self, tmp_path):
        ctx = make_ctx(tmp_path, apps=("gtc",))
        t0 = time.monotonic()
        results, report = run_suite_parallel(
            ctx, {"hung": _hang_forever}, jobs=1, task_timeout_s=1.0)
        assert time.monotonic() - t0 < 60
        (res,) = results
        assert isinstance(res, ExperimentFailure)
        assert res.error_type == "WorkerTimeout"
        assert report.n_failed == 1

    def test_strict_mode_raises_on_worker_failure(self, tmp_path):
        ctx = make_ctx(tmp_path, apps=("gtc",))
        with pytest.raises(ExperimentAbortedError, match="doomed"):
            run_suite_parallel(ctx, {"doomed": _always_crash}, jobs=1,
                               strict=True)

    def test_in_experiment_exception_is_isolated(self, tmp_path):
        def broken(ctx):
            raise ValueError("injected experiment bug")

        ctx = make_ctx(tmp_path, apps=("gtc",))
        results, report = run_suite_parallel(ctx, {"broken": broken}, jobs=1)
        (res,) = results
        # handled by the in-worker HardenedRunner, not the scheduler
        assert isinstance(res, ExperimentFailure)
        assert res.error_type == "ValueError"
        assert report.n_failed == 0
