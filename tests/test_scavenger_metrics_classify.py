"""Metric rows, derived masses, and NVRAM classification."""

import numpy as np
import pytest

from repro.memory.object import MemoryObject, ObjectKind
from repro.scavenger.classify import (
    NVRAMClass,
    Placement,
    classify_objects,
    classify_one,
    nvram_eligible_bytes,
)
from repro.scavenger.config import ScavengerConfig
from repro.scavenger.metrics import (
    ObjectMetrics,
    compute_object_metrics,
    high_rw_bytes,
    read_only_bytes,
    untouched_bytes,
)
from repro.scavenger.object_stats import ObjectStatsTable


def make_metrics(
    reads=0, writes=0, size=1024, ref_rate=0.0, write_share=0.0, touched=8, oid=0
):
    return ObjectMetrics(
        oid=oid,
        name=f"obj{oid}",
        kind=ObjectKind.GLOBAL,
        size=size,
        base=0x1000 + oid * size,
        reads=reads,
        writes=writes,
        reference_rate=ref_rate,
        write_share=write_share,
        reads_per_iter=np.zeros(11, np.int64),
        writes_per_iter=np.zeros(11, np.int64),
        iterations_touched=touched,
    )


class TestObjectMetrics:
    def test_rw_ratio_and_flags(self):
        m = make_metrics(reads=100, writes=10)
        assert m.rw_ratio == pytest.approx(10.0)
        assert not m.read_only and not m.untouched
        ro = make_metrics(reads=50, writes=0)
        assert ro.read_only
        assert ro.rw_ratio == float("inf")
        dead = make_metrics()
        assert dead.untouched

    def test_compute_from_table(self):
        objs = {
            0: MemoryObject(0, ObjectKind.GLOBAL, "a", 0x1000, 256),
            1: MemoryObject(1, ObjectKind.HEAP, "b", 0x2000, 512),
            2: MemoryObject(2, ObjectKind.GLOBAL, "never_used", 0x3000, 64),
        }
        t = ObjectStatsTable()
        t.add_batch(np.array([0, 0, 1]), np.array([False, True, False]), iteration=1)
        t.add_batch(np.array([0]), np.array([False]), iteration=2)
        rows = compute_object_metrics(objs, t, total_refs=4)
        by_oid = {m.oid: m for m in rows}
        assert by_oid[0].reads == 2 and by_oid[0].writes == 1
        assert by_oid[0].reference_rate == pytest.approx(3 / 4)
        assert by_oid[0].write_share == pytest.approx(1.0)
        assert by_oid[0].iterations_touched == 2
        assert by_oid[2].untouched
        assert by_oid[2].size == 64

    def test_mass_helpers(self):
        rows = [
            make_metrics(reads=10, writes=0, size=100, oid=0),  # read-only
            make_metrics(reads=600, writes=10, size=200, oid=1),  # rw 60
            make_metrics(reads=5, writes=5, size=400, oid=2),
            make_metrics(reads=0, writes=0, size=800, touched=0, oid=3),  # untouched
        ]
        assert read_only_bytes(rows) == 100
        assert high_rw_bytes(rows, threshold=50) == 200
        assert untouched_bytes(rows) == 800


class TestClassification:
    CFG = ScavengerConfig()

    def classify(self, m, n_iter=10):
        return classify_one(m, self.CFG, n_iter)

    def test_untouched_goes_nvram(self):
        c = self.classify(make_metrics(touched=0))
        assert c.nvram_class is NVRAMClass.UNTOUCHED
        assert c.placement is Placement.NVRAM

    def test_read_only_goes_nvram(self):
        c = self.classify(make_metrics(reads=100, writes=0))
        assert c.nvram_class is NVRAMClass.READ_ONLY
        assert c.placement is Placement.NVRAM

    def test_high_rw_goes_cat2(self):
        """Even r/w > 50 data carries writes: category-2 NVRAM only
        ("especially NVRAM of the second category", §VII-B)."""
        c = self.classify(make_metrics(reads=6000, writes=100))
        assert c.nvram_class is NVRAMClass.HIGH_RW
        assert c.placement is Placement.NVRAM_CAT2

    def test_metric3_corner_case(self):
        """High r/w ratio BUT a large share of total writes: barred from
        category-1 NVRAM (the paper's third metric)."""
        c = self.classify(make_metrics(reads=6000, writes=100, write_share=0.2))
        assert c.nvram_class is NVRAMClass.HIGH_RW
        assert c.placement is Placement.NVRAM_CAT2
        assert "write share" in c.reason

    def test_moderate_rw_cat2(self):
        c = self.classify(make_metrics(reads=200, writes=10))
        assert c.nvram_class is NVRAMClass.MODERATE_RW
        assert c.placement is Placement.NVRAM_CAT2

    def test_read_leaning_cat2(self):
        c = self.classify(make_metrics(reads=30, writes=10))
        assert c.nvram_class is NVRAMClass.READ_LEANING
        assert c.placement is Placement.NVRAM_CAT2

    def test_write_heavy_dram(self):
        c = self.classify(make_metrics(reads=10, writes=30))
        assert c.nvram_class is NVRAMClass.WRITE_HEAVY
        assert c.placement is Placement.DRAM

    def test_sparse_use_migratable(self):
        c = self.classify(make_metrics(reads=10, writes=30, touched=2))
        assert c.placement is Placement.MIGRATABLE
        assert "migrate" in c.reason

    def test_eligible_bytes_by_category(self):
        rows = [
            make_metrics(reads=10, writes=0, size=100, oid=0),  # NVRAM
            make_metrics(reads=200, writes=10, size=200, oid=1),  # CAT2
            make_metrics(reads=1, writes=30, size=400, oid=2),  # DRAM
        ]
        classified = classify_objects(rows, self.CFG)
        assert nvram_eligible_bytes(classified, category=1) == 100
        assert nvram_eligible_bytes(classified, category=2) == 300
        with pytest.raises(ValueError):
            nvram_eligible_bytes(classified, category=3)
