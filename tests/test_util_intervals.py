"""IntervalSet: canonical form, overlap, and merge semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import IntervalSet


def test_empty():
    s = IntervalSet()
    assert len(s) == 0
    assert s.total_bytes == 0
    assert not s.overlaps(0, 100)
    with pytest.raises(ValueError):
        s.span


def test_add_disjoint():
    s = IntervalSet([(0, 10), (20, 30)])
    assert list(s) == [(0, 10), (20, 30)]
    assert s.total_bytes == 20
    assert s.span == (0, 30)


def test_add_overlapping_coalesces():
    s = IntervalSet([(0, 10), (5, 15)])
    assert list(s) == [(0, 15)]


def test_add_adjacent_coalesces():
    s = IntervalSet([(0, 10), (10, 20)])
    assert list(s) == [(0, 20)]


def test_add_bridging():
    s = IntervalSet([(0, 10), (20, 30)])
    s.add(5, 25)
    assert list(s) == [(0, 30)]


def test_empty_interval_ignored():
    s = IntervalSet()
    s.add(5, 5)
    assert len(s) == 0


def test_inverted_raises():
    with pytest.raises(ValueError):
        IntervalSet([(10, 5)])


def test_contains():
    s = IntervalSet([(10, 20), (30, 40)])
    assert s.contains(10)
    assert s.contains(19)
    assert not s.contains(20)
    assert not s.contains(25)
    assert s.contains(35)
    assert not s.contains(5)


def test_overlaps():
    s = IntervalSet([(10, 20)])
    assert s.overlaps(15, 25)
    assert s.overlaps(0, 11)
    assert not s.overlaps(20, 30)  # half-open: touching is not overlapping
    assert not s.overlaps(0, 10)
    assert not s.overlaps(5, 5)


def test_equality():
    assert IntervalSet([(0, 10), (5, 20)]) == IntervalSet([(0, 20)])
    assert IntervalSet([(0, 10)]) != IntervalSet([(0, 11)])


@given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 50)), max_size=30))
@settings(max_examples=100, deadline=None)
def test_canonical_form_invariant(raw):
    s = IntervalSet()
    total_points = set()
    for lo, length in raw:
        s.add(lo, lo + length)
        total_points.update(range(lo, lo + length))
    ivals = list(s)
    # sorted, disjoint, non-adjacent
    for (a1, b1), (a2, b2) in zip(ivals, ivals[1:]):
        assert b1 < a2
    # coverage is exactly the union of inserted points
    assert s.total_bytes == len(total_points)
    for a, b in ivals:
        assert all(p in total_points for p in range(a, b))
