"""Fast and slow stack analyzers against ground truth."""

import numpy as np
import pytest

from repro.instrument.api import FanoutProbe
from repro.instrument.runtime import InstrumentedRuntime
from repro.scavenger.stackfast import FastStackAnalyzer
from repro.scavenger.stackslow import SlowStackAnalyzer


def build(probes_factory):
    fan = FanoutProbe([])
    rt = InstrumentedRuntime(fan, buffer_capacity=256)
    probes = probes_factory(rt)
    for p in probes:
        fan.add(p)
    return rt, probes


class TestFastStack:
    def test_counts_stack_vs_heap(self):
        rt, (fast,) = build(lambda rt: [FastStackAnalyzer(rt.space.stack)])
        h = rt.malloc(100, "x:1")
        rt.begin_iteration(1)
        with rt.call("k", 1024):
            loc = rt.local_array("l", 64)
            rt.store(loc, np.arange(64))
            rt.load(loc, np.arange(64), repeat=3)
            rt.load(h, np.arange(100))
        rt.finish()
        s = fast.summary()
        assert s.stack_reads[1] == 192
        assert s.stack_writes[1] == 64
        assert s.total_refs[1] == 256 + 100
        assert s.rw_ratio(iteration=1) == pytest.approx(3.0)
        assert s.reference_percentage == pytest.approx(256 / 356)

    def test_rw_ratio_skip_first(self):
        rt, (fast,) = build(lambda rt: [FastStackAnalyzer(rt.space.stack)])
        for it, (r, w) in enumerate([(10, 10), (40, 2), (40, 2)], start=1):
            rt.begin_iteration(it)
            with rt.call("k", 1024):
                loc = rt.local_array("l", 64)
                rt.store(loc, np.arange(w))
                rt.load(loc, np.arange(r))
        rt.finish()
        s = fast.summary()
        assert s.rw_ratio(iteration=1) == pytest.approx(1.0)
        assert s.rw_ratio(skip_first=True) == pytest.approx(20.0)
        assert s.rw_ratio() == pytest.approx(90 / 14)

    def test_read_only_stack_gives_inf(self):
        rt, (fast,) = build(lambda rt: [FastStackAnalyzer(rt.space.stack)])
        rt.begin_iteration(1)
        with rt.call("k", 256):
            loc = rt.local_array("l", 16)
            with rt.paused_recording():
                rt.store(loc, np.arange(16))
            rt.load(loc, np.arange(16))
        rt.finish()
        assert fast.summary().rw_ratio() == float("inf")


class TestSlowStack:
    def test_per_routine_attribution(self):
        rt, (slow,) = build(lambda rt: [SlowStackAnalyzer(rt.space.stack)])
        rt.begin_iteration(1)
        with rt.call("outer", 1024):
            out_loc = rt.local_array("o", 32)
            rt.store(out_loc, np.arange(32))
            with rt.call("inner", 512):
                in_loc = rt.local_array("i", 16)
                rt.load(in_loc, np.arange(16), repeat=2)
                # inner reads the OUTER frame's local: attribution goes to
                # outer, the frame that allocated the data
                rt.load(out_loc, np.arange(32))
        rt.finish()
        stats = {f.routine: f for f in slow.frame_stats()}
        assert stats["outer"].writes == 32
        assert stats["outer"].reads == 32
        assert stats["inner"].reads == 32
        assert stats["inner"].writes == 0
        assert stats["inner"].rw_ratio == float("inf")

    def test_reference_rate_is_share_of_all_refs(self):
        rt, (slow,) = build(lambda rt: [SlowStackAnalyzer(rt.space.stack)])
        g = rt.global_array("g", 100)
        rt.begin_iteration(1)
        rt.load(g, np.arange(100))  # non-stack traffic
        with rt.call("k", 512):
            loc = rt.local_array("l", 16)
            rt.store(loc, np.arange(16))
        rt.finish()
        stats = {f.routine: f for f in slow.frame_stats()}
        assert stats["k"].reference_rate == pytest.approx(16 / 116)
        assert slow.total_refs == 116

    def test_repeated_calls_accumulate(self):
        rt, (slow,) = build(lambda rt: [SlowStackAnalyzer(rt.space.stack)])
        rt.begin_iteration(1)
        for _ in range(3):
            with rt.call("k", 256):
                loc = rt.local_array("l", 8)
                rt.store(loc, np.arange(8))
        rt.finish()
        stats = {f.routine: f for f in slow.frame_stats()}
        assert stats["k"].writes == 24
        assert len(slow.frame_stats()) == 1  # one object per routine

    def test_max_frame_bytes_tracked(self):
        rt, (slow,) = build(lambda rt: [SlowStackAnalyzer(rt.space.stack)])
        rt.begin_iteration(1)
        with rt.call("k", 256):
            loc = rt.local_array("l", 8)
            rt.store(loc, np.arange(8))
        with rt.call("k", 1024):
            loc = rt.local_array("l", 8)
            rt.store(loc, np.arange(8))
        rt.finish()
        stats = {f.routine: f for f in slow.frame_stats()}
        assert stats["k"].max_frame_bytes == 1024


class TestFastSlowConsistency:
    def test_same_stack_totals(self):
        """Both analyzers see the same stack reference population."""
        def factory(rt):
            return [FastStackAnalyzer(rt.space.stack), SlowStackAnalyzer(rt.space.stack)]

        rt, (fast, slow) = build(factory)
        g = rt.global_array("g", 50)
        rt.begin_iteration(1)
        rt.load(g, np.arange(50))
        with rt.call("a", 512):
            la = rt.local_array("x", 32)
            rt.store(la, np.arange(32))
            rt.load(la, np.arange(32))
            with rt.call("b", 256):
                lb = rt.local_array("y", 16)
                rt.store(lb, np.arange(16))
        rt.finish()
        s = fast.summary()
        slow_total_reads = sum(f.reads for f in slow.frame_stats())
        slow_total_writes = sum(f.writes for f in slow.frame_stats())
        assert slow_total_reads == int(s.stack_reads.sum())
        assert slow_total_writes == int(s.stack_writes.sum())
        assert slow.unattributed_stack_refs == 0
