"""TraceBuffer: batching, flushing, iteration boundaries."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.buffer import TraceBuffer
from repro.trace.record import AccessType, RefBatch


def collect():
    out = []
    return out, out.append


def make_batch(n, iteration=0, access=AccessType.READ):
    return RefBatch.from_access(np.arange(n, dtype=np.uint64), access, iteration=iteration)


def test_small_appends_buffered_until_flush():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=100)
    buf.append(make_batch(10))
    buf.append(make_batch(20))
    assert out == []
    assert buf.fill == 30
    buf.flush()
    assert len(out) == 1
    assert len(out[0]) == 30


def test_auto_flush_on_capacity():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=16)
    buf.append(make_batch(40))
    # 40 refs through a 16-slot buffer: two full flushes, 8 remain
    assert len(out) == 2
    assert all(len(b) == 16 for b in out)
    assert buf.fill == 8
    buf.flush()
    assert len(out[2]) == 8


def test_no_references_lost_or_reordered():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=7)
    buf.append(make_batch(25))
    buf.flush()
    merged = np.concatenate([b.addr for b in out])
    assert merged.tolist() == list(range(25))


def test_iteration_change_flushes_and_tags():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=100)
    buf.append(make_batch(5, iteration=0))
    buf.set_iteration(1)
    buf.append(make_batch(5, iteration=1))
    buf.flush()
    assert [b.iteration for b in out] == [0, 1]


def test_set_same_iteration_does_not_flush():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=100)
    buf.append(make_batch(5))
    buf.set_iteration(0)
    assert out == []


def test_empty_flush_noop():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=10)
    buf.flush()
    assert out == []
    assert buf.flush_count == 0


def test_counters():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=8)
    buf.append(make_batch(20))
    buf.flush()
    assert buf.refs_seen == 20
    assert buf.flush_count == 3


def test_bad_capacity():
    with pytest.raises(TraceError):
        TraceBuffer(lambda b: None, capacity=0)


def test_write_flag_preserved():
    out, sink = collect()
    buf = TraceBuffer(sink, capacity=4)
    buf.append(make_batch(3, access=AccessType.WRITE))
    buf.append(make_batch(3, access=AccessType.READ))
    buf.flush()
    merged_w = np.concatenate([b.is_write for b in out])
    assert merged_w.tolist() == [True] * 3 + [False] * 3
