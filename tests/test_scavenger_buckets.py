"""Object-lookup indexes: equivalence of the three implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.scavenger.buckets import MISS, BucketIndex, LinearScanIndex, SortedRangeIndex

SPAN = (0x1000, 0x100000)


def build_disjoint_ranges(sizes, base=0x1000, gap=16):
    """Deterministic disjoint (oid, base, limit) triples."""
    out = []
    cur = base
    for oid, size in enumerate(sizes):
        out.append((oid, cur, cur + size))
        cur += size + gap
    return out


@pytest.fixture(params=["linear", "bucket", "sorted"])
def index(request):
    if request.param == "linear":
        return LinearScanIndex()
    if request.param == "bucket":
        return BucketIndex(SPAN, n_buckets=8)
    return SortedRangeIndex()


class TestCommonBehaviour:
    def test_lookup_hit_and_miss(self, index):
        for oid, lo, hi in build_disjoint_ranges([64, 128, 32]):
            index.insert(oid, lo, hi)
        assert index.lookup(0x1000) == 0
        assert index.lookup(0x1000 + 63) == 0
        assert index.lookup(0x1000 + 64) == MISS  # the gap
        assert len(index) == 3

    def test_remove(self, index):
        ranges = build_disjoint_ranges([64, 64])
        for oid, lo, hi in ranges:
            index.insert(oid, lo, hi)
        index.remove(0)
        assert index.lookup(ranges[0][1]) == MISS
        assert index.lookup(ranges[1][1]) == 1

    def test_empty_range_rejected(self, index):
        with pytest.raises(SimulationError):
            index.insert(0, 0x2000, 0x2000)

    def test_lookup_batch(self, index):
        for oid, lo, hi in build_disjoint_ranges([64, 64]):
            index.insert(oid, lo, hi)
        addrs = np.array([0x1000, 0x1000 + 80, 0x9999999], dtype=np.uint64)
        out = index.lookup_batch(addrs)
        assert out.tolist() == [0, 1, MISS]


class TestBucketSpecific:
    def test_rebalancing_doubles_buckets(self):
        idx = BucketIndex(SPAN, n_buckets=2, max_mean_occupancy=2.0)
        for oid, lo, hi in build_disjoint_ranges([32] * 10):
            idx.insert(oid, lo, hi)
        assert idx.rebuilds >= 1
        assert idx.n_buckets > 2
        # all lookups still correct after rebuild
        for oid, lo, hi in build_disjoint_ranges([32] * 10):
            assert idx.lookup(lo) == oid

    def test_range_spanning_buckets(self):
        idx = BucketIndex((0, 1024), n_buckets=8)  # 128 B buckets
        idx.insert(7, 100, 600)
        for addr in (100, 300, 599):
            assert idx.lookup(addr) == 7
        assert idx.lookup(600) == MISS

    def test_out_of_span_insert_rejected(self):
        idx = BucketIndex((0, 100))
        with pytest.raises(SimulationError):
            idx.insert(0, 50, 200)

    def test_out_of_span_lookup_misses(self):
        idx = BucketIndex((100, 200))
        idx.insert(0, 100, 150)
        assert idx.lookup(50) == MISS
        assert idx.lookup(250) == MISS

    def test_occupancy(self):
        idx = BucketIndex((0, 1024), n_buckets=4)
        idx.insert(0, 0, 10)
        idx.insert(1, 300, 310)
        occ = idx.occupancy()
        assert occ.sum() == 2


class TestSortedSpecific:
    def test_overlap_detected_on_lookup(self):
        idx = SortedRangeIndex()
        idx.insert(0, 100, 200)
        idx.insert(1, 150, 250)
        with pytest.raises(SimulationError):
            idx.lookup(120)

    def test_remove_then_reinsert(self):
        idx = SortedRangeIndex()
        idx.insert(0, 100, 200)
        idx.remove(0)
        idx.insert(1, 100, 200)
        assert idx.lookup(150) == 1


@given(
    st.lists(st.integers(8, 512), min_size=1, max_size=40),
    st.lists(st.integers(0, 0x40000), min_size=1, max_size=100),
)
@settings(max_examples=40, deadline=None)
def test_property_all_indexes_agree(sizes, probe_offsets):
    """The three implementations are observationally identical."""
    ranges = build_disjoint_ranges(sizes)
    linear = LinearScanIndex()
    bucket = BucketIndex(SPAN, n_buckets=4, max_mean_occupancy=3.0)
    srt = SortedRangeIndex()
    for oid, lo, hi in ranges:
        linear.insert(oid, lo, hi)
        bucket.insert(oid, lo, hi)
        srt.insert(oid, lo, hi)
    addrs = np.array([0x1000 + off for off in probe_offsets], dtype=np.uint64)
    a = linear.lookup_batch(addrs)
    b = bucket.lookup_batch(addrs)
    c = srt.lookup_batch(addrs)
    assert a.tolist() == b.tolist() == c.tolist()


class TestVectorizedBatchPath:
    """The sorted-array batch path agrees with the scalar scan exactly."""

    def test_batch_matches_scalar(self, index):
        for oid, lo, hi in build_disjoint_ranges([64, 128, 32, 256, 8]):
            index.insert(oid, lo, hi)
        rng = np.random.default_rng(7)
        addrs = rng.integers(0x1000, 0x1000 + 2048, size=500, dtype=np.uint64)
        expected = [index.lookup(int(a)) for a in addrs]
        assert index.lookup_batch(addrs).tolist() == expected

    def test_mutation_invalidates_cached_view(self, index):
        ranges = build_disjoint_ranges([64, 64, 64])
        for oid, lo, hi in ranges:
            index.insert(oid, lo, hi)
        addrs = np.array([r[1] for r in ranges], dtype=np.uint64)
        assert index.lookup_batch(addrs).tolist() == [0, 1, 2]
        index.remove(1)
        assert index.lookup_batch(addrs).tolist() == [0, MISS, 2]
        index.insert(9, ranges[1][1], ranges[1][2])
        assert index.lookup_batch(addrs).tolist() == [0, 9, 2]

    @pytest.mark.parametrize("make", [
        LinearScanIndex,
        lambda: BucketIndex(SPAN, n_buckets=8),
    ])
    def test_overlap_falls_back_to_first_match(self, make):
        idx = make()
        idx.insert(0, 0x2000, 0x2200)
        idx.insert(1, 0x2100, 0x2400)  # overlaps oid 0
        addrs = np.array([0x2150, 0x2300, 0x9000], dtype=np.uint64)
        out = idx.lookup_batch(addrs)
        # first-match (insertion-order) semantics, same as scalar lookup
        assert out.tolist() == [idx.lookup(0x2150), idx.lookup(0x2300), MISS]
        assert out.tolist()[:2] == [0, 1]

    def test_empty_index_batch(self, index):
        addrs = np.array([0x1000, 0x2000], dtype=np.uint64)
        assert index.lookup_batch(addrs).tolist() == [MISS, MISS]
