"""Shared fixtures: small deterministic apps, runtimes, and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import create_app
from repro.cachesim import MemoryTraceProbe
from repro.instrument import FanoutProbe, InstrumentedRuntime
from repro.memory.layout import AddressLayout
from repro.scavenger import NVScavenger
from repro.util.units import MiB

#: small-but-meaningful fidelity for unit/integration tests
FAST_REFS = 6_000
FAST_SCALE = 1.0 / 256.0


@pytest.fixture(scope="session")
def small_layout() -> AddressLayout:
    """A compact address space for allocator tests."""
    return AddressLayout(global_size=4 * MiB, heap_size=16 * MiB, stack_size=4 * MiB)


@pytest.fixture
def runtime() -> InstrumentedRuntime:
    """A runtime with a no-op probe."""
    return InstrumentedRuntime(FanoutProbe([]))


def make_app(name: str, refs: int = FAST_REFS, iters: int = 10, seed: int = 0):
    return create_app(
        name, scale=FAST_SCALE, refs_per_iteration=refs, n_iterations=iters, seed=seed
    )


@pytest.fixture(scope="session")
def analyzed_apps():
    """All four apps analyzed once per test session (cached: expensive)."""
    out = {}
    for name in ("nek5000", "cam", "gtc", "s3d"):
        app = make_app(name, refs=10_000)
        probe = MemoryTraceProbe()
        sc = NVScavenger(extra_probes=[probe])
        instructions = 0

        def program(rt, app=app):
            nonlocal instructions
            app(rt)
            instructions = rt.instruction_count

        res = sc.analyze(program, n_main_iterations=10)
        out[name] = (app, res, probe, instructions)
    return out


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
