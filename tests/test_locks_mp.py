"""KeyLock under *real* multi-process contention.

The single-process lock tests elsewhere exercise the flock semantics
through two handles in one process; these tests put actual processes on
the lock, because that is the deployment story for ``run_all(jobs=N)``:

* N processes racing to record the same spec on one shared cache root
  must produce exactly one application execution (``app_runs`` sums to
  1 across the pool) — the losers replay the winner's artifact;
* a lock holder that dies ungracefully (SIGKILL — no ``finally``, no
  ``atexit``) must not deadlock anyone: the kernel releases ``flock``
  on process death.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.engine import PipelineEngine, RunSpec
from repro.engine.artifacts import ArtifactCache
from repro.engine.locks import KeyLock
from repro.errors import CacheLockError

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="contention tests need real processes sharing a cache root",
)

SPEC = dict(app="gtc", refs_per_iteration=2_000, scale=1.0 / 256.0,
            n_iterations=3, seed=11)


def _race_record(root: str, barrier, q) -> None:
    eng = PipelineEngine(root=root)
    barrier.wait()  # line everyone up on the same starting gun
    eng.record(RunSpec(**SPEC))
    q.put(eng.stats.snapshot())


def _hold_lock_until_killed(lock_path: str, ready) -> None:
    KeyLock(lock_path).acquire()
    ready.set()
    time.sleep(3600)  # killed long before this returns


def _begin_then_die(root: str, ready) -> None:
    cache = ArtifactCache(root)
    pending = cache.begin(RunSpec(**SPEC))
    # leave something partial so the next writer must clean up after us
    with open(os.path.join(pending.directory, "events.json"), "wb") as fh:
        fh.write(b"partial garbage")
    ready.set()
    time.sleep(3600)


class TestMultiProcessContention:
    N = 4

    def test_n_racers_one_execution(self, tmp_path):
        mp = multiprocessing.get_context("fork")
        barrier = mp.Barrier(self.N)
        q = mp.Queue()
        procs = [mp.Process(target=_race_record,
                            args=(str(tmp_path / "cache"), barrier, q))
                 for _ in range(self.N)]
        for p in procs:
            p.start()
        stats = [q.get(timeout=120) for _ in range(self.N)]
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        total_runs = sum(s["app_runs"] for s in stats)
        total_hits = sum(s["cache_hits"] for s in stats)
        assert total_runs == 1, f"spec executed {total_runs} times"
        assert total_hits == self.N - 1
        # the one committed artifact is intact and replayable
        eng = PipelineEngine(root=str(tmp_path / "cache"))
        art = eng.cache.get(RunSpec(**SPEC))
        assert art is not None
        assert art.verify() > 0

    def test_killed_holder_releases_lock(self, tmp_path):
        mp = multiprocessing.get_context("fork")
        lock_path = str(tmp_path / "locks" / "k.lock")
        ready = mp.Event()
        holder = mp.Process(target=_hold_lock_until_killed,
                            args=(lock_path, ready))
        holder.start()
        assert ready.wait(timeout=30)
        # while the holder lives, the lock is genuinely contended
        assert not KeyLock(lock_path).try_acquire()
        os.kill(holder.pid, signal.SIGKILL)
        holder.join(timeout=30)
        lock = KeyLock(lock_path)
        lock.acquire(timeout=10.0)  # kernel released it: no deadlock
        assert lock.held
        lock.release()

    def test_killed_holder_times_out_others_while_alive(self, tmp_path):
        mp = multiprocessing.get_context("fork")
        lock_path = str(tmp_path / "locks" / "k.lock")
        ready = mp.Event()
        holder = mp.Process(target=_hold_lock_until_killed,
                            args=(lock_path, ready))
        holder.start()
        try:
            assert ready.wait(timeout=30)
            with pytest.raises(CacheLockError):
                KeyLock(lock_path).acquire(timeout=0.2)
        finally:
            os.kill(holder.pid, signal.SIGKILL)
            holder.join(timeout=30)

    def test_recorder_killed_mid_write_does_not_wedge_cache(self, tmp_path):
        """A recorder SIGKILLed while holding the key lock with a partial
        artifact on disk must not block the next recorder."""
        mp = multiprocessing.get_context("fork")
        root = str(tmp_path / "cache")
        ready = mp.Event()
        victim = mp.Process(target=_begin_then_die, args=(root, ready))
        victim.start()
        assert ready.wait(timeout=30)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        eng = PipelineEngine(root=root)
        art = eng.record(RunSpec(**SPEC))  # cleans up, re-records
        assert eng.stats.app_runs == 1
        assert art.verify() > 0
